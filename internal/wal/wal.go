// Package wal gives the in-memory quad store a life beyond the
// process: a write-ahead log that journals every Update mutation,
// background checkpoints in the sectioned-N-Quads snapshot format, and
// replay-on-open crash recovery (DESIGN.md §12).
//
// The durability directory holds two files:
//
//	checkpoint.nq — a store snapshot (store.Snapshot format)
//	wal.log       — framed mutation records appended since the snapshot
//
// Commits are journaled log-first: the SPARQL engine publishes the quad
// delta of each Update operation through its CommitHook, the log
// appends (and, under SyncAlways, fsyncs) one record, and only then is
// the delta applied to the store. Open replays checkpoint + log tail
// and tolerates a torn final record, so a kill -9 at any byte recovers
// the store to exactly the last durably framed commit.
package wal

import (
	"errors"
	"time"

	"repro/internal/rdf"
)

// SyncPolicy controls when appended records are fsynced to disk.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every Append: a record is durable before
	// the mutation is applied. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker every SyncEvery. A
	// crash loses at most the last interval of commits, but recovery is
	// still torn-record safe.
	SyncInterval
	// SyncOff never fsyncs explicitly; the OS decides. Records are
	// still written (unbuffered) per Append, so only an OS/power crash
	// loses data — a process kill does not.
	SyncOff
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncOff:
		return "off"
	}
	return "unknown"
}

// ParseSyncPolicy maps the -fsync flag values onto a policy.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "off":
		return SyncOff, nil
	}
	return 0, errors.New(`wal: unknown fsync policy (want "always", "interval" or "off")`)
}

// Options configures Open.
type Options struct {
	// Sync is the fsync policy for appended records.
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period; 0 means 100ms.
	SyncEvery time.Duration
	// Indexes configures the semantic-network indexes of a store
	// created for an empty directory (no checkpoint yet). Ignored when
	// a checkpoint exists — the snapshot carries the index config.
	// Empty means store.DefaultIndexes.
	Indexes []string
}

// OpKind tags one journaled mutation.
type OpKind byte

const (
	// OpInsert asserts a quad into a concrete model.
	OpInsert OpKind = 1
	// OpDelete retracts a quad from a concrete model. Deletes issued
	// against a virtual model or the all-models dataset are journaled
	// once per member model, so the record always carries the concrete
	// model the replay must touch.
	OpDelete OpKind = 2
)

// Op is one journaled mutation: a quad asserted into or retracted from
// a concrete semantic model.
type Op struct {
	Kind  OpKind
	Model string
	Quad  rdf.Quad
}

// Batch is the quad delta of one Update operation, journaled and
// applied atomically: either the whole record is durably framed (and
// replays), or none of it does.
type Batch struct {
	Ops []Op
}

// Stats is a point-in-time view of the log, exported by /stats and the
// Prometheus /metrics endpoint.
type Stats struct {
	// WalBytes and WalRecords describe the live log tail (since the
	// last checkpoint truncation).
	WalBytes   int64
	WalRecords int64
	// Seq is the sequence number of the next record to append.
	Seq uint64
	// Checkpoints counts successful checkpoints; CheckpointErrors the
	// failed attempts (the log is never truncated on failure).
	Checkpoints      int64
	CheckpointErrors int64
	// LastCheckpointBytes and LastCheckpointDuration describe the most
	// recent successful checkpoint.
	LastCheckpointBytes    int64
	LastCheckpointDuration time.Duration
	// ReplayedRecords and TornBytesDropped describe the recovery that
	// opened this log: records replayed from the tail, and trailing
	// bytes discarded as a torn or corrupt final record.
	ReplayedRecords  int64
	TornBytesDropped int64
}
