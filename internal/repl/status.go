package repl

import "time"

// State is the follower's replication lifecycle state.
type State int32

const (
	// StateBootstrapping: fetching or restoring a leader snapshot; no
	// store is being extended (the previous one, if any, still serves).
	StateBootstrapping State = iota
	// StateTailing: the follower holds a consistent copy and is
	// streaming the leader's log.
	StateTailing
)

func (s State) String() string {
	switch s {
	case StateBootstrapping:
		return "bootstrapping"
	case StateTailing:
		return "tailing"
	default:
		return "unknown"
	}
}

// Status is a point-in-time view of the follower's replication
// progress, surfaced verbatim in /stats and as pgrdf_repl_* metrics.
type Status struct {
	Leader string `json:"leader"`
	State  string `json:"state"`
	// Degraded is true when the last successful leader contact is older
	// than the configured threshold — reads are being served stale.
	Degraded bool `json:"degraded"`

	// Position in the leader's history.
	LeaderID string `json:"leader_id"`
	Epoch    uint64 `json:"epoch"`
	Offset   int64  `json:"offset"`
	NextSeq  uint64 `json:"next_seq"`

	// Lag against the leader's last reported end of log.
	LeaderOffset  int64   `json:"leader_offset"`
	BytesBehind   int64   `json:"bytes_behind"`
	RecordsBehind int64   `json:"records_behind"`
	LastContactMS float64 `json:"last_contact_ms"` // -1 = never

	// Lifetime counters.
	AppliedRecords int64 `json:"applied_records"`
	Bootstraps     int64 `json:"bootstraps"`
	Divergences    int64 `json:"divergences"`
	EpochAdoptions int64 `json:"epoch_adoptions"`
	RetryErrors    int64 `json:"retry_errors"`
	StaleRejected  int64 `json:"stale_rejected"`
}

// Status reports the follower's current replication state and lag.
func (f *Follower) Status() Status {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	s := Status{
		Leader:         f.opts.Leader,
		State:          State(f.state.Load()).String(),
		LeaderID:       pos.id,
		Epoch:          pos.epoch,
		Offset:         pos.offset,
		NextSeq:        pos.nextSeq,
		LeaderOffset:   f.leaderOffset.Load(),
		LastContactMS:  -1,
		AppliedRecords: f.appliedRecords.Load(),
		Bootstraps:     f.bootstraps.Load(),
		Divergences:    f.divergences.Load(),
		EpochAdoptions: f.epochAdoptions.Load(),
		RetryErrors:    f.retryErrors.Load(),
		StaleRejected:  f.staleRejected.Load(),
	}
	if age, ok := f.contactAge(); ok {
		s.LastContactMS = float64(age) / float64(time.Millisecond)
		s.Degraded = age > f.opts.DegradedAfter
	} else {
		s.Degraded = true
	}
	if d := s.LeaderOffset - s.Offset; d > 0 {
		s.BytesBehind = d
	}
	if ls := f.leaderNextSeq.Load(); ls > pos.nextSeq {
		s.RecordsBehind = int64(ls - pos.nextSeq)
	}
	return s
}

// contactAge returns the age of the last successful leader contact.
func (f *Follower) contactAge() (time.Duration, bool) {
	n := f.lastContactNanos.Load()
	if n == 0 {
		return 0, false
	}
	return time.Duration(time.Now().UnixNano() - n), true
}

// Stale reports whether reads must be refused under the configured
// staleness ceiling (MaxStaleness = 0 never refuses). The HTTP layer
// answers true with 503 + Retry-After.
func (f *Follower) Stale() bool {
	if f.opts.MaxStaleness <= 0 {
		return false
	}
	age, ok := f.contactAge()
	return !ok || age > f.opts.MaxStaleness
}

// NoteStaleRejected counts a read refused for staleness.
func (f *Follower) NoteStaleRejected() { f.staleRejected.Add(1) }

// RetryAfter suggests how long a client refused for staleness should
// wait before retrying.
func (f *Follower) RetryAfter() time.Duration {
	d := f.opts.BackoffMax
	if d < time.Second {
		d = time.Second
	}
	return d
}
