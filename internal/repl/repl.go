// Package repl implements WAL-shipping replication (DESIGN.md §13):
// a follower bootstraps from a leader's consistent store snapshot,
// tails the leader's write-ahead log over HTTP, applies each
// CRC-framed record through the same path crash recovery uses, and
// serves read-only queries against the result.
//
// The robustness contract:
//
//   - Every leader interaction runs under a per-request timeout, and
//     failures retry with jittered exponential backoff. The follower
//     never gives up; it keeps serving whatever it has.
//   - Tailing resumes from the last applied byte offset; frames are
//     CRC-verified again on the follower, and sequence numbers must
//     advance exactly one per record.
//   - Divergence — the leader restored from an older checkpoint, the
//     log truncated under the follower, a replication-identity change,
//     a sequence regression, or bytes that persistently fail to frame
//     — is detected and answered by re-bootstrapping from a fresh
//     snapshot, never by applying records from the wrong history.
//   - Degradation is explicit: while the leader is unreachable the
//     follower answers stale reads and reports its lag and a degraded
//     state through Status (surfaced in /stats and pgrdf_repl_*
//     metrics); operators can opt into failing stale reads with 503
//     via the staleness threshold.
package repl

import "repro/internal/wal"

// HTTP protocol surface shared by the leader (internal/httpapi) and
// the follower. All replication positions travel in headers so record
// bytes and snapshot streams stay uninterpreted on the wire.
const (
	// HeaderID carries wal.Position.ID.
	HeaderID = "X-Pgrdf-Repl-Id"
	// HeaderEpoch carries wal.Position.Epoch.
	HeaderEpoch = "X-Pgrdf-Repl-Epoch"
	// HeaderOffset carries wal.Position.Offset — on a snapshot
	// response, the log offset the snapshot corresponds to; on a tail
	// response, the durable end of the leader's log.
	HeaderOffset = "X-Pgrdf-Repl-Offset"
	// HeaderSeq carries wal.Position.NextSeq.
	HeaderSeq = "X-Pgrdf-Repl-Seq"
	// HeaderEpochStartSeq carries wal.Position.EpochStartSeq.
	HeaderEpochStartSeq = "X-Pgrdf-Repl-Epoch-Start-Seq"
	// HeaderSnapshotQuads is the quad count of a snapshot stream; the
	// follower rejects a bootstrap whose restored store disagrees —
	// the guard against a transfer truncated on a clean line boundary.
	HeaderSnapshotQuads = "X-Pgrdf-Repl-Snapshot-Quads"
)

// Diverged is the JSON body of the leader's 409 response to a tail
// request whose position does not belong to the leader's history. It
// carries the leader's current position so a caught-up follower can
// adopt a new epoch without re-bootstrapping.
type Diverged struct {
	Error    string       `json:"error"`
	Kind     string       `json:"kind"`
	Position wal.Position `json:"position"`
}
