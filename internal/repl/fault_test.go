package repl_test

// The replication acceptance test (DESIGN.md §13): a follower tailing
// a leader through a proxy that drops connections, delays responses,
// and truncates bodies mid-frame at arbitrary byte offsets — plus a
// leader kill/restart-from-checkpoint in the middle — must still
// converge to a store byte-identical to the leader's last durable
// state.

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/httpapi"
	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/wal"
)

// fault modes the proxy injects, chosen per request.
const (
	passThrough = iota
	dropConn    // close the TCP connection without a response
	delayThenPass
	truncateDirty // short body under the original Content-Length: client read error
	truncateClean // short body re-framed as a complete response: client sees a prefix
)

// flakyProxy forwards requests to a retargetable backend, injecting
// the selected fault on a seeded schedule so runs are reproducible.
type flakyProxy struct {
	mu      sync.Mutex
	backend string
	rng     *rand.Rand
	healthy atomic.Bool // true = pass everything through
	faults  atomic.Int64
}

func (p *flakyProxy) setBackend(u string) {
	p.mu.Lock()
	p.backend = u
	p.mu.Unlock()
}

// pick chooses the fault mode and any random cut point under the lock
// so the rng is race-free.
func (p *flakyProxy) pick(bodyLen int) (mode int, cut int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.healthy.Load() {
		return passThrough, 0
	}
	switch n := p.rng.Intn(10); {
	case n < 4:
		mode = passThrough
	case n < 6:
		mode = dropConn
	case n < 7:
		mode = delayThenPass
	case n < 9:
		mode = truncateDirty
	default:
		mode = truncateClean
	}
	if bodyLen > 1 {
		cut = 1 + p.rng.Intn(bodyLen-1)
	}
	return mode, cut
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Decide connection-level faults before touching the backend.
	mode, _ := p.pick(0)
	switch mode {
	case dropConn:
		p.faults.Add(1)
		if hj, ok := w.(http.Hijacker); ok {
			if c, _, err := hj.Hijack(); err == nil {
				c.Close()
				return
			}
		}
		w.WriteHeader(http.StatusBadGateway)
		return
	case delayThenPass:
		p.faults.Add(1)
		time.Sleep(50 * time.Millisecond)
	}
	p.mu.Lock()
	backend := p.backend
	p.mu.Unlock()
	req, err := http.NewRequestWithContext(r.Context(), r.Method, backend+r.URL.RequestURI(), r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadGateway)
		return
	}
	// Body-level faults cut at an arbitrary byte offset — including mid
	// CRC frame and mid snapshot line.
	mode, cut := p.pick(len(body))
	for k, vs := range resp.Header {
		if mode == truncateClean && k == "Content-Length" {
			continue // re-framed: the short body must look complete
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	switch mode {
	case truncateDirty:
		p.faults.Add(1)
		w.Header().Set("Content-Length", fmt.Sprint(len(body)))
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:cut])
		if hj, ok := w.(http.Hijacker); ok {
			if c, brw, err := hj.Hijack(); err == nil {
				brw.Flush()
				c.Close() // the client sees an unexpected EOF mid-body
			}
		}
	case truncateClean:
		p.faults.Add(1)
		w.WriteHeader(resp.StatusCode)
		w.Write(body[:cut])
	default:
		w.WriteHeader(resp.StatusCode)
		w.Write(body)
	}
}

// leader bundles one leader incarnation.
type leader struct {
	st  *store.Store
	log *wal.Log
	srv *httptest.Server
}

func startLeader(t *testing.T, dir string) *leader {
	t.Helper()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	h := httpapi.NewServer(st)
	h.AttachWAL(l)
	return &leader{st: st, log: l, srv: httptest.NewServer(h)}
}

func (ld *leader) stop() {
	ld.srv.CloseClientConnections()
	ld.srv.Close()
	ld.log.Close()
}

func postUpdate(t *testing.T, base, update string) {
	t.Helper()
	resp, err := http.PostForm(base+"/update",
		url.Values{"update": {update}, "model": {"m"}})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update returned %s", resp.Status)
	}
}

func snapshotBytes(t *testing.T, st *store.Store) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := st.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// waitConverged polls until the follower's position equals the
// leader's durable end of log.
func waitConverged(t *testing.T, f *repl.Follower, l *wal.Log, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		pos := l.Position()
		fs := f.Status()
		// The ID comparison matters: two distinct histories can have
		// numerically identical (epoch, offset, seq) coordinates.
		if fs.LeaderID == pos.ID && fs.Epoch == pos.Epoch &&
			fs.Offset == pos.Offset && fs.NextSeq == pos.NextSeq {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("follower did not converge: follower %+v, leader %+v", f.Status(), l.Position())
}

func followerOpts(leaderURL string, t *testing.T) repl.Options {
	return repl.Options{
		Leader:         leaderURL,
		RequestTimeout: 2 * time.Second,
		PollWait:       100 * time.Millisecond,
		BackoffBase:    5 * time.Millisecond,
		BackoffMax:     50 * time.Millisecond,
		Logf:           t.Logf,
	}
}

// TestFaultInjectionDifferential is the convergence differential: a
// faulty wire and a leader crash must never leave the follower with
// anything other than a byte-identical copy once the faults clear.
func TestFaultInjectionDifferential(t *testing.T) {
	dir := t.TempDir()
	ld := startLeader(t, dir)
	defer func() { ld.stop() }()

	proxy := &flakyProxy{rng: rand.New(rand.NewSource(42))}
	proxy.setBackend(ld.srv.URL)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	f := repl.New(followerOpts(proxySrv.URL, t))
	ctx := t.Context()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()

	// Let the follower bootstrap over a healthy wire, then turn the
	// faults on for the whole write workload.
	proxy.healthy.Store(true)
	postUpdate(t, ld.srv.URL, `INSERT DATA { <http://v/seed> <http://p/v> "seed" }`)
	if _, err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	proxy.healthy.Store(false)

	for i := 0; i < 30; i++ {
		postUpdate(t, ld.srv.URL,
			fmt.Sprintf(`INSERT DATA { <http://v/%d> <http://p/v> "val-%d" }`, i, i))
		// Pace the workload so tail cycles interleave with the writes
		// and plenty of requests cross the faulty wire.
		time.Sleep(10 * time.Millisecond)
		if i%7 == 3 {
			postUpdate(t, ld.srv.URL,
				fmt.Sprintf(`DELETE DATA { <http://v/%d> <http://p/v> "val-%d" }`, i-1, i-1))
		}
		if i == 10 {
			if err := ld.log.Checkpoint(ld.st); err != nil {
				t.Fatal(err)
			}
		}
		if i == 20 {
			// Kill the leader mid-stream and restart it from its
			// checkpoint + log tail. Identity and epoch survive in
			// repl.meta, so the follower resumes without re-bootstrap.
			ld.stop()
			ld = startLeader(t, dir)
			proxy.setBackend(ld.srv.URL)
		}
	}

	// Heal the wire and require exact convergence.
	proxy.healthy.Store(true)
	waitConverged(t, f, ld.log, 30*time.Second)

	want := snapshotBytes(t, ld.st)
	got := snapshotBytes(t, f.Store())
	if !bytes.Equal(want, got) {
		t.Fatalf("follower snapshot differs from leader after convergence:\nleader %d bytes\nfollower %d bytes",
			len(want), len(got))
	}
	if proxy.faults.Load() == 0 {
		t.Fatal("the proxy injected no faults; the differential proved nothing")
	}
	st := f.Status()
	if st.RetryErrors == 0 {
		t.Errorf("no retried errors recorded despite %d injected faults", proxy.faults.Load())
	}
	t.Logf("converged through %d injected faults: %+v", proxy.faults.Load(), st)
}

// TestFollowerRebootstrapsOnLeaderIdentityChange replaces the leader
// with a brand-new history (fresh data dir, fresh replication ID); the
// follower must detect the divergence and re-bootstrap rather than
// graft the new log onto the old store.
func TestFollowerRebootstrapsOnLeaderIdentityChange(t *testing.T) {
	ldA := startLeader(t, t.TempDir())
	postUpdate(t, ldA.srv.URL, `INSERT DATA { <http://v/a> <http://p/v> "from-A" }`)

	proxy := &flakyProxy{rng: rand.New(rand.NewSource(1))}
	proxy.healthy.Store(true)
	proxy.setBackend(ldA.srv.URL)
	proxySrv := httptest.NewServer(proxy)
	defer proxySrv.Close()

	f := repl.New(followerOpts(proxySrv.URL, t))
	ctx := t.Context()
	go f.Run(ctx)
	if _, err := f.WaitReady(ctx); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, f, ldA.log, 10*time.Second)

	ldB := startLeader(t, t.TempDir())
	defer ldB.stop()
	postUpdate(t, ldB.srv.URL, `INSERT DATA { <http://v/b> <http://p/v> "from-B" }`)
	ldA.stop()
	proxy.setBackend(ldB.srv.URL)

	waitConverged(t, f, ldB.log, 10*time.Second)
	if !bytes.Equal(snapshotBytes(t, ldB.st), snapshotBytes(t, f.Store())) {
		t.Fatal("follower did not adopt the new leader's state")
	}
	st := f.Status()
	if st.Divergences == 0 || st.Bootstraps < 2 {
		t.Fatalf("expected a divergence-driven re-bootstrap, got %+v", st)
	}
}

// TestStaleness covers the explicit degradation contract: with no
// ceiling stale reads are always served; with a ceiling, Stale flips
// once the leader has been silent too long.
func TestStaleness(t *testing.T) {
	f := repl.New(repl.Options{Leader: "http://127.0.0.1:0"})
	if f.Stale() {
		t.Fatal("MaxStaleness=0 must never refuse reads")
	}
	f = repl.New(repl.Options{Leader: "http://127.0.0.1:0", MaxStaleness: 10 * time.Millisecond})
	if !f.Stale() {
		t.Fatal("a follower that has never reached its leader is stale under a ceiling")
	}
	st := f.Status()
	if !st.Degraded || st.LastContactMS != -1 {
		t.Fatalf("never-contacted follower must report degraded: %+v", st)
	}
}
