package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/wal"
)

// errResync marks conditions under which the follower's copy can no
// longer be trusted to extend the leader's history: identity or epoch
// mismatch, a sequence regression, a partially applied batch, or
// bytes that persistently fail to frame. The only safe response is a
// re-bootstrap; the error never escapes Run.
var errResync = errors.New("repl: follower diverged from leader history")

// zeroProgressLimit is how many consecutive non-empty tail reads may
// fail to decode a single frame before the follower declares the
// stream diverged. Transient wire truncation recovers in one retry;
// a leader whose log was rewritten under the same offset never does.
const zeroProgressLimit = 5

// Options configures a Follower. Only Leader is required.
type Options struct {
	// Leader is the base URL of the leader's HTTP endpoint, e.g.
	// "http://leader:3030".
	Leader string
	// Client is the HTTP client used for every leader interaction.
	// Nil means a default client; per-request timeouts are applied via
	// request contexts either way.
	Client *http.Client
	// RequestTimeout bounds one tail request beyond the long-poll wait
	// (and the snapshot response headers). 0 means 10s.
	RequestTimeout time.Duration
	// SnapshotTimeout bounds a whole bootstrap transfer. 0 means 5m.
	SnapshotTimeout time.Duration
	// PollWait is the long-poll hold the follower asks the leader for
	// when it is caught up. 0 means 5s.
	PollWait time.Duration
	// ChunkBytes caps the record bytes requested per tail read.
	// 0 means 4 MiB.
	ChunkBytes int
	// BackoffBase and BackoffMax bound the jittered exponential
	// backoff between failed leader interactions. 0 means 100ms / 5s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// DegradedAfter is the age of the last successful leader contact
	// at which Status reports StateDegraded. 0 means 15s.
	DegradedAfter time.Duration
	// MaxStaleness, when positive, is the last-contact age past which
	// Stale() reports true and the HTTP layer fails reads with 503 +
	// Retry-After. 0 serves stale reads forever (the default).
	MaxStaleness time.Duration
	// Logf, when set, receives progress lines (bootstraps, divergence,
	// leader loss). Nil disables logging.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.SnapshotTimeout <= 0 {
		o.SnapshotTimeout = 5 * time.Minute
	}
	if o.PollWait <= 0 {
		o.PollWait = 5 * time.Second
	}
	if o.ChunkBytes <= 0 {
		o.ChunkBytes = 4 << 20
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 100 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 5 * time.Second
	}
	if o.DegradedAfter <= 0 {
		o.DegradedAfter = 15 * time.Second
	}
	o.Leader = strings.TrimRight(o.Leader, "/")
	return o
}

// followPos is the follower's cursor into the leader's history.
type followPos struct {
	id      string
	epoch   uint64
	offset  int64
	nextSeq uint64
}

// Follower replicates a leader's store. Create with New, then run the
// replication loop with Run (usually in its own goroutine); WaitReady
// blocks until the first bootstrap has produced a queryable store.
type Follower struct {
	opts   Options
	client *http.Client

	// OnStore, when set, is called with the fresh store after every
	// successful (re)bootstrap — the HTTP layer swaps its engine here.
	// Set it before calling Run.
	OnStore func(*store.Store)

	st atomic.Pointer[store.Store]

	mu sync.Mutex
	//pgrdf:guardedby mu
	pos followPos
	//pgrdf:guardedby mu
	needBootstrap bool
	//pgrdf:guardedby mu
	zeroProgress int

	ready     chan struct{}
	readyOnce sync.Once

	// observability
	state            atomic.Int32 // State
	lastContactNanos atomic.Int64 // wall-clock unix nanos; 0 = never
	appliedRecords   atomic.Int64
	leaderOffset     atomic.Int64
	leaderNextSeq    atomic.Uint64
	bootstraps       atomic.Int64
	divergences      atomic.Int64
	epochAdoptions   atomic.Int64
	retryErrors      atomic.Int64
	staleRejected    atomic.Int64
}

// New builds a follower for the given leader. Run starts replication.
func New(opts Options) *Follower {
	opts = opts.withDefaults()
	cl := opts.Client
	if cl == nil {
		cl = &http.Client{}
	}
	f := &Follower{opts: opts, client: cl, ready: make(chan struct{})}
	f.state.Store(int32(StateBootstrapping))
	f.mu.Lock()
	f.needBootstrap = true
	f.mu.Unlock()
	return f
}

// Store returns the follower's current store (nil before the first
// bootstrap completes). The store is swapped wholesale on
// re-bootstrap; callers serving queries should use OnStore to follow
// the swaps.
func (f *Follower) Store() *store.Store { return f.st.Load() }

// WaitReady blocks until the first bootstrap has completed (returning
// the store) or ctx fires.
func (f *Follower) WaitReady(ctx context.Context) (*store.Store, error) {
	select {
	case <-f.ready:
		return f.st.Load(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Run drives the replication loop — bootstrap, tail, retry with
// backoff, re-bootstrap on divergence — until ctx is canceled. It
// returns ctx's error; every other failure is retried forever (the
// follower keeps serving stale reads while the leader is away).
func (f *Follower) Run(ctx context.Context) error {
	attempt := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if f.bootstrapNeeded() {
			f.state.Store(int32(StateBootstrapping))
			if err := f.bootstrap(ctx); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				f.retryErrors.Add(1)
				f.logf("bootstrap from %s failed: %v", f.opts.Leader, err)
				f.sleep(ctx, f.backoff(&attempt))
				continue
			}
			attempt = 0
		}
		f.state.Store(int32(StateTailing))
		err := f.tailOnce(ctx)
		switch {
		case err == nil:
			attempt = 0
		case ctx.Err() != nil:
			return ctx.Err()
		case errors.Is(err, errResync):
			f.divergences.Add(1)
			f.setNeedBootstrap()
			f.logf("divergence detected (%v); re-bootstrapping from %s", err, f.opts.Leader)
			f.sleep(ctx, f.backoff(&attempt))
		default:
			f.retryErrors.Add(1)
			f.sleep(ctx, f.backoff(&attempt))
		}
	}
}

func (f *Follower) bootstrapNeeded() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.needBootstrap || f.st.Load() == nil
}

func (f *Follower) setNeedBootstrap() {
	f.mu.Lock()
	f.needBootstrap = true
	f.mu.Unlock()
}

// bootstrap fetches the leader's consistent snapshot, restores it into
// a fresh store, verifies the transfer was complete, and adopts the
// position the snapshot corresponds to.
func (f *Follower) bootstrap(ctx context.Context) error {
	rctx, cancel := context.WithTimeout(ctx, f.opts.SnapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet,
		f.opts.Leader+"/export?format=snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: snapshot request: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		drain(resp.Body)
		return fmt.Errorf("repl: leader snapshot returned %s", resp.Status)
	}
	pos, err := positionFromHeaders(resp.Header)
	if err != nil {
		return fmt.Errorf("repl: leader %s is not serving a replication snapshot (start it with -data-dir): %w",
			f.opts.Leader, err)
	}
	wantQuads, err := strconv.Atoi(resp.Header.Get(HeaderSnapshotQuads))
	if err != nil {
		return fmt.Errorf("repl: snapshot response missing %s", HeaderSnapshotQuads)
	}
	st, err := store.Restore(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: restore snapshot: %w", err)
	}
	if st.Len() != wantQuads {
		return fmt.Errorf("repl: snapshot transfer truncated: restored %d quads, leader sent %d", st.Len(), wantQuads)
	}

	f.mu.Lock()
	f.pos = followPos{id: pos.ID, epoch: pos.Epoch, offset: pos.Offset, nextSeq: pos.NextSeq}
	f.needBootstrap = false
	f.zeroProgress = 0
	f.mu.Unlock()
	f.st.Store(st)
	f.bootstraps.Add(1)
	f.noteContact(pos)
	if f.OnStore != nil {
		f.OnStore(st)
	}
	f.readyOnce.Do(func() { close(f.ready) })
	f.logf("bootstrapped %d quads from %s at epoch %d offset %d (next seq %d)",
		st.Len(), f.opts.Leader, pos.Epoch, pos.Offset, pos.NextSeq)
	return nil
}

// tailOnce performs one long-poll tail request and applies whatever
// complete frames arrive. A nil return means contact succeeded (even
// if no new records were available).
func (f *Follower) tailOnce(ctx context.Context) error {
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()

	q := url.Values{}
	q.Set("from", strconv.FormatInt(pos.offset, 10))
	q.Set("epoch", strconv.FormatUint(pos.epoch, 10))
	q.Set("id", pos.id)
	q.Set("wait", f.opts.PollWait.String())
	q.Set("max", strconv.Itoa(f.opts.ChunkBytes))
	rctx, cancel := context.WithTimeout(ctx, f.opts.RequestTimeout+f.opts.PollWait)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, f.opts.Leader+"/wal?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: tail request: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return f.handleConflict(resp)
	default:
		drain(resp.Body)
		return fmt.Errorf("repl: leader tail returned %s", resp.Status)
	}
	lpos, err := positionFromHeaders(resp.Header)
	if err != nil {
		return fmt.Errorf("repl: tail response: %w", err)
	}
	if lpos.ID != pos.id {
		return fmt.Errorf("%w: leader identity changed from %s to %s", errResync, pos.id, lpos.ID)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, int64(f.opts.ChunkBytes)+frameSlack))
	if err != nil {
		return fmt.Errorf("repl: read tail body: %w", err)
	}
	f.noteContact(lpos)

	consumed, err := f.applyFrames(body)
	if err != nil {
		return err
	}
	f.mu.Lock()
	if consumed == 0 && len(body) > 0 {
		f.zeroProgress++
		if f.zeroProgress >= zeroProgressLimit {
			f.zeroProgress = 0
			f.mu.Unlock()
			return fmt.Errorf("%w: %d consecutive reads at epoch %d offset %d yielded no decodable frame",
				errResync, zeroProgressLimit, pos.epoch, pos.offset)
		}
	} else {
		f.zeroProgress = 0
	}
	f.mu.Unlock()
	return nil
}

// frameSlack is how far past the requested chunk size a tail body may
// run (the leader caps by whole reads, not exact bytes).
const frameSlack = 1 << 16

// applyFrames decodes the CRC-framed records at the start of data and
// applies each to the follower's store, verifying that sequence
// numbers advance exactly one per record. It acknowledges (advances
// the follower position by) only fully applied frames, and returns
// errResync when the stream cannot be trusted any further: a sequence
// mismatch, or a batch that failed half-applied. Its error must never
// be discarded — an unhandled apply failure silently forks the
// follower from the leader (enforced by the walerr analyzer).
func (f *Follower) applyFrames(data []byte) (consumed int64, err error) {
	st := f.st.Load()
	f.mu.Lock()
	expect := f.pos.nextSeq
	f.mu.Unlock()
	applied := int64(0)
	consumed, _, err = wal.DecodeFrames(data, func(seq uint64, b wal.Batch) error {
		if seq != expect {
			return fmt.Errorf("%w: expected record seq %d, leader sent %d", errResync, expect, seq)
		}
		if aerr := wal.ApplyBatch(st, b); aerr != nil {
			// The batch may be half-applied; this copy can no longer be
			// extended safely.
			return fmt.Errorf("%w: apply record %d: %v", errResync, seq, aerr)
		}
		expect++
		applied++
		return nil
	})
	if consumed > 0 || applied > 0 {
		f.ackApplied(consumed, expect, applied)
	}
	return consumed, err
}

// ackApplied advances the follower's replication cursor past frames
// that were fully applied, making the progress visible to Status and
// to the next tail request.
func (f *Follower) ackApplied(consumed int64, nextSeq uint64, records int64) {
	f.mu.Lock()
	f.pos.offset += consumed
	f.pos.nextSeq = nextSeq
	f.mu.Unlock()
	f.appliedRecords.Add(records)
}

// handleConflict interprets the leader's 409: adopt the new epoch when
// this follower has provably applied everything the truncation folded
// into the leader's checkpoint, re-bootstrap otherwise.
func (f *Follower) handleConflict(resp *http.Response) error {
	var d Diverged
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&d); err != nil {
		return fmt.Errorf("%w: undecodable divergence response: %v", errResync, err)
	}
	f.mu.Lock()
	pos := f.pos
	f.mu.Unlock()
	lp := d.Position
	if lp.ID == pos.id && lp.Epoch > pos.epoch && lp.EpochStartSeq == pos.nextSeq {
		// The leader checkpointed while we were caught up: every record
		// the truncation removed is already applied here. Adopt the new
		// epoch at offset zero and keep tailing.
		f.mu.Lock()
		f.pos.epoch = lp.Epoch
		f.pos.offset = 0
		f.zeroProgress = 0
		f.mu.Unlock()
		f.epochAdoptions.Add(1)
		f.noteContact(lp)
		f.logf("adopted leader epoch %d at offset 0 (seq %d)", lp.Epoch, lp.EpochStartSeq)
		return nil
	}
	return fmt.Errorf("%w: leader at epoch %d (start seq %d, id %s), follower at epoch %d offset %d (next seq %d)",
		errResync, lp.Epoch, lp.EpochStartSeq, lp.ID, pos.epoch, pos.offset, pos.nextSeq)
}

// noteContact records a successful leader interaction and the leader's
// end-of-log position for lag reporting.
func (f *Follower) noteContact(lpos wal.Position) {
	f.lastContactNanos.Store(time.Now().UnixNano())
	f.leaderOffset.Store(lpos.Offset)
	f.leaderNextSeq.Store(lpos.NextSeq)
}

// backoff returns the next jittered exponential delay and advances the
// attempt counter: base·2^attempt capped at max, with full jitter in
// [d/2, d] so a fleet of followers does not reconnect in lockstep.
func (f *Follower) backoff(attempt *int) time.Duration {
	d := f.opts.BackoffBase << min(*attempt, 20)
	if d <= 0 || d > f.opts.BackoffMax {
		d = f.opts.BackoffMax
	}
	if *attempt < 30 {
		*attempt++
	}
	half := int64(d / 2)
	if half > 0 {
		d = time.Duration(half + rand.Int63n(half+1))
	}
	return d
}

func (f *Follower) sleep(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf("repl: "+format, args...)
	}
}

// positionFromHeaders decodes the leader position headers present on
// snapshot and tail responses.
func positionFromHeaders(h http.Header) (wal.Position, error) {
	var p wal.Position
	p.ID = h.Get(HeaderID)
	if p.ID == "" {
		return p, fmt.Errorf("missing %s header", HeaderID)
	}
	var err error
	if p.Epoch, err = strconv.ParseUint(h.Get(HeaderEpoch), 10, 64); err != nil {
		return p, fmt.Errorf("bad %s header: %v", HeaderEpoch, err)
	}
	if p.Offset, err = strconv.ParseInt(h.Get(HeaderOffset), 10, 64); err != nil {
		return p, fmt.Errorf("bad %s header: %v", HeaderOffset, err)
	}
	if p.NextSeq, err = strconv.ParseUint(h.Get(HeaderSeq), 10, 64); err != nil {
		return p, fmt.Errorf("bad %s header: %v", HeaderSeq, err)
	}
	if v := h.Get(HeaderEpochStartSeq); v != "" {
		if p.EpochStartSeq, err = strconv.ParseUint(v, 10, 64); err != nil {
			return p, fmt.Errorf("bad %s header: %v", HeaderEpochStartSeq, err)
		}
	}
	return p, nil
}

func drain(r io.Reader) {
	io.Copy(io.Discard, io.LimitReader(r, 1<<16)) //nolint — best-effort connection reuse
}
