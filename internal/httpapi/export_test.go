package httpapi

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/ntriples"
)

func TestExportStreamsNQuads(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/export?model=social")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-quads" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	quads, err := ntriples.NewReader(strings.NewReader(string(body))).ReadAll()
	if err != nil {
		t.Fatalf("export output is not valid N-Quads: %v\n%s", err, body)
	}
	if len(quads) != 4 {
		t.Fatalf("exported %d quads, want 4:\n%s", len(quads), body)
	}
}

func TestExportUnknownModelIs404(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/export?model=nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestExportMissingModelIs400(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/export")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestExportLeavesNoOpenCursors(t *testing.T) {
	srv := testServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/export?model=social")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"openCursors":0`) {
		t.Fatalf("cursor leak after export: %s", body)
	}
}
