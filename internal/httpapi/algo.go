package httpapi

// POST /algo — the graph-analytics endpoint: projects the requested
// model into a CSR (cached per store version) and runs PageRank, WCC
// or triangle counting on the morsel-parallel runtime in
// internal/graph. Requests participate in the same admission control,
// deadlines and graceful drain as queries.

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/graph"
	"repro/internal/pgrdf"
	"repro/internal/store"
)

// algoRequest is the POST /algo JSON body. Zero values select
// defaults; Scheme "" or "auto" sniffs the dataset.
type algoRequest struct {
	Algo      string `json:"algo"`  // pagerank | wcc | triangles
	Model     string `json:"model"` // model or virtual model; "" = all
	Scheme    string `json:"scheme"`
	Label     string `json:"label"`     // edge-label filter; "" = all
	WeightKey string `json:"weightKey"` // edge property as weight
	K         int    `json:"k"`         // top-k size; 0 = 10

	// PageRank knobs (see graph.PageRankOptions).
	Damping       float64 `json:"damping"`
	MaxIterations int     `json:"maxIterations"`
	Tolerance     float64 `json:"tolerance"`
	Weighted      bool    `json:"weighted"`

	// Parallelism overrides the server's worker budget for this run;
	// 0 uses the configured default. Results are identical either way.
	Parallelism int `json:"parallelism"`
}

// algoResponse is the POST /algo JSON reply. Exactly one of the
// per-algorithm result groups is populated.
type algoResponse struct {
	Algo       string  `json:"algo"`
	Scheme     string  `json:"scheme"`
	Model      string  `json:"model,omitempty"`
	Vertices   int     `json:"vertices"`
	Edges      int     `json:"edges"`
	CSRBuildMS float64 `json:"csrBuildMS"`
	CSRCached  bool    `json:"csrCached"`
	RunMS      float64 `json:"runMS"`

	Iterations int               `json:"iterations,omitempty"`
	Converged  bool              `json:"converged,omitempty"`
	Top        []graph.Ranked    `json:"top,omitempty"`
	Components int               `json:"components,omitempty"`
	TopComps   []graph.Component `json:"topComponents,omitempty"`
	Triangles  *int64            `json:"triangles,omitempty"`
}

// algoNames orders the algorithms for the per-algo counter arrays.
var algoNames = []string{"pagerank", "wcc", "triangles"}

func algoIndex(name string) int {
	for i, n := range algoNames {
		if n == name {
			return i
		}
	}
	return -1
}

// algoStats are the /algo counters exported on /stats and /metrics.
type algoStats struct {
	runs        [3]atomic.Int64
	errors      [3]atomic.Int64
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

// csrCache memoizes the most recent projection per server. A single
// entry is enough for the dashboard/bench access pattern — repeated
// runs of different algorithms over the same projection — and keeps
// invalidation trivial: the entry is dropped whenever the store
// pointer or its mutation version moves on.
type csrCache struct {
	mu sync.Mutex
	//pgrdf:guardedby mu
	key string
	//pgrdf:guardedby mu
	st *store.Store
	//pgrdf:guardedby mu
	version uint64
	//pgrdf:guardedby mu
	cs *graph.CSR
}

// lookup returns the cached CSR when the key, store identity and store
// version all match.
func (c *csrCache) lookup(key string, st *store.Store, version uint64) *graph.CSR {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cs != nil && c.key == key && c.st == st && c.version == version {
		return c.cs
	}
	return nil
}

func (c *csrCache) put(key string, st *store.Store, version uint64, cs *graph.CSR) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.key, c.st, c.version, c.cs = key, st, version, cs
}

func (s *Server) handleAlgo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	body, err := s.readBody(r)
	if err != nil {
		bodyError(w, err)
		return
	}
	req := algoRequest{K: 10, Tolerance: 0}
	if strings.TrimSpace(body) != "" {
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			writeJSONError(w, http.StatusBadRequest, "request", "invalid JSON body: "+err.Error())
			return
		}
	}
	ai := algoIndex(req.Algo)
	if ai < 0 {
		writeJSONError(w, http.StatusBadRequest, "request",
			"unknown algo (want pagerank, wcc or triangles)")
		return
	}

	if s.rejectStale(w) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := requestCtx(r, s.cfg.QueryTimeout)
	defer cancel()

	st := s.engine().Store()
	scheme, err := resolveScheme(st, req.Model, req.Scheme)
	if err != nil {
		s.algo.errors[ai].Add(1)
		algoError(w, err)
		return
	}

	// The projection and the run share the query budget: MaxBindings
	// caps total work units (quads drained + vertex/edge touches).
	budget := graph.Budget{MaxWork: int64(max(s.cfg.MaxBindings, 0))}

	resp := algoResponse{Algo: req.Algo, Scheme: scheme.String(), Model: req.Model}
	key := req.Model + "\x00" + scheme.String() + "\x00" + req.Label + "\x00" + req.WeightKey
	version := st.Version()
	cs := s.algoCSR.lookup(key, st, version)
	if cs != nil {
		s.algo.cacheHits.Add(1)
		resp.CSRCached = true
	} else {
		s.algo.cacheMisses.Add(1)
		start := time.Now()
		cs, err = graph.Project(ctx, st, graph.ProjectOptions{
			Model:     req.Model,
			Scheme:    scheme,
			Label:     req.Label,
			WeightKey: req.WeightKey,
			Reverse:   true,
		}, budget)
		if err != nil {
			s.algo.errors[ai].Add(1)
			algoError(w, err)
			return
		}
		resp.CSRBuildMS = float64(time.Since(start).Microseconds()) / 1000
		s.algoCSR.put(key, st, version, cs)
	}
	resp.Vertices = cs.NumVertices()
	resp.Edges = cs.NumEdges()

	par := req.Parallelism
	if par == 0 {
		par = s.cfg.Parallelism
	}
	if par < 0 {
		par = 1
	}
	runner := graph.Runner{Parallelism: par, Budget: budget}
	start := time.Now()
	switch req.Algo {
	case "pagerank":
		res, err := runner.PageRank(ctx, cs, graph.PageRankOptions{
			Damping:       req.Damping,
			MaxIterations: req.MaxIterations,
			Tolerance:     req.Tolerance,
			Weighted:      req.Weighted,
		})
		if err != nil {
			s.algo.errors[ai].Add(1)
			algoError(w, err)
			return
		}
		resp.Iterations = res.Iterations
		resp.Converged = res.Converged
		resp.Top = graph.TopScores(cs, res.Scores, req.K)
	case "wcc":
		res, err := runner.WCC(ctx, cs)
		if err != nil {
			s.algo.errors[ai].Add(1)
			algoError(w, err)
			return
		}
		resp.Iterations = res.Iterations
		resp.Components = res.Components
		resp.TopComps = graph.TopComponents(cs, res, req.K)
	case "triangles":
		res, err := runner.Triangles(ctx, cs)
		if err != nil {
			s.algo.errors[ai].Add(1)
			algoError(w, err)
			return
		}
		resp.Triangles = &res.Count
	}
	resp.RunMS = float64(time.Since(start).Microseconds()) / 1000
	s.algo.runs[ai].Add(1)

	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// resolveScheme parses the request's scheme name, sniffing the dataset
// for "" / "auto".
func resolveScheme(st *store.Store, model, name string) (pgrdf.Scheme, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "", "AUTO":
		return graph.DetectScheme(st, model, pgrdf.Vocabulary{})
	case "RF":
		return pgrdf.RF, nil
	case "NG":
		return pgrdf.NG, nil
	case "SP":
		return pgrdf.SP, nil
	default:
		return pgrdf.NG, errors.New("unknown scheme (want RF, NG, SP or auto)")
	}
}

// algoError maps a graph-layer error onto an HTTP status + JSON body,
// mirroring queryError's mapping for the query path.
func algoError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, graph.ErrTimeout):
		writeJSONError(w, http.StatusGatewayTimeout, "timeout", err.Error())
	case errors.Is(err, graph.ErrBudgetExceeded):
		writeJSONError(w, http.StatusBadRequest, "budget-exceeded", err.Error())
	case errors.Is(err, graph.ErrCanceled):
		writeJSONError(w, http.StatusRequestTimeout, "canceled", err.Error())
	case strings.Contains(err.Error(), "unknown model"):
		writeJSONError(w, http.StatusNotFound, "unknown-model", err.Error())
	case strings.Contains(err.Error(), "unknown scheme"):
		writeJSONError(w, http.StatusBadRequest, "request", err.Error())
	default:
		writeJSONError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}
