package httpapi

import (
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Server is the SPARQL protocol handler. Mount it on an http.Server:
//
//	h := httpapi.NewServer(st)
//	http.ListenAndServe(":8080", h)
//
// Endpoints:
//
//	GET  /sparql?query=...&model=...   — query via URL parameter
//	POST /sparql                       — query via form or raw body
//	                                     (Content-Type application/sparql-query
//	                                     or application/x-www-form-urlencoded)
//	POST /update                       — update via form or raw body
//	                                     (application/sparql-update)
//	GET  /stats                        — dataset statistics (JSON)
//
// SELECT and ASK return application/sparql-results+json; CONSTRUCT
// returns application/n-quads. The optional `model` parameter names the
// semantic or virtual model to query ("" = all models).
type Server struct {
	eng *sparql.Engine
	mux *http.ServeMux
	// ReadOnly disables the /update endpoint.
	ReadOnly bool
}

// NewServer builds a handler over the store.
func NewServer(st *store.Store) *Server {
	s := &Server{eng: sparql.NewEngine(st), mux: http.NewServeMux()}
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var query, model string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
		model = r.URL.Query().Get("model")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			query = string(body)
			model = r.URL.Query().Get("model")
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			query = r.PostForm.Get("query")
			model = r.PostForm.Get("model")
		}
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if strings.TrimSpace(query) == "" {
		http.Error(w, "missing query", http.StatusBadRequest)
		return
	}

	form, err := queryForm(query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	switch form {
	case sparql.FormAsk:
		v, err := s.eng.Ask(model, query)
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		WriteBooleanJSON(w, v)
	case sparql.FormConstruct, sparql.FormDescribe:
		var quads []rdf.Quad
		var err error
		if form == sparql.FormConstruct {
			quads, err = s.eng.Construct(model, query)
		} else {
			quads, err = s.eng.Describe(model, query)
		}
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/n-quads")
		nw := ntriples.NewWriter(w)
		nw.WriteAll(quads)
	default:
		res, err := s.eng.Query(model, query)
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		WriteResultsJSON(w, res)
	}
}

// queryForm parses just enough to dispatch on the query form.
func queryForm(query string) (sparql.QueryForm, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return 0, err
	}
	return q.Form, nil
}

func queryError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if strings.Contains(err.Error(), "unknown model") {
		status = http.StatusNotFound
	}
	http.Error(w, err.Error(), status)
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		http.Error(w, "updates are disabled", http.StatusForbidden)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var request, model string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		request = string(body)
		model = r.URL.Query().Get("model")
	} else {
		if err := r.ParseForm(); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		request = r.PostForm.Get("update")
		model = r.PostForm.Get("model")
	}
	if strings.TrimSpace(request) == "" {
		http.Error(w, "missing update", http.StatusBadRequest)
		return
	}
	if model == "" {
		http.Error(w, "updates require an explicit model parameter", http.StatusBadRequest)
		return
	}
	res, err := s.eng.Update(model, request)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"inserted":%d,"deleted":%d}`+"\n", res.Inserted, res.Deleted)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	model := r.URL.Query().Get("model")
	var models []string
	if model != "" {
		models = append(models, model)
	}
	st, err := s.eng.Store().Stats(models...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	rep := s.eng.Store().Storage()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"quads":%d,"subjects":%d,"predicates":%d,"objects":%d,"namedGraphs":%d,"storageBytes":%d}`+"\n",
		st.Quads, st.Subjects, st.Predicates, st.Objects, st.NamedGraphs, rep.Total)
}
