package httpapi

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ntriples"
	"repro/internal/rdf"
	"repro/internal/repl"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/wal"
)

// Config bounds what one request — and the endpoint as a whole — may
// consume. The zero value of a field falls back to the DefaultConfig
// value; explicit negatives disable a limit.
type Config struct {
	// QueryTimeout is the wall-clock deadline for one query request,
	// measured from admission (queue wait does not count against it).
	// <0 disables.
	QueryTimeout time.Duration
	// UpdateTimeout is the deadline for one update request. <0 disables.
	UpdateTimeout time.Duration
	// MaxConcurrent is the number of queries executing simultaneously.
	// <0 disables admission control.
	MaxConcurrent int
	// MaxQueue is how many requests may wait for a free execution slot
	// before new arrivals are shed with 503.
	MaxQueue int
	// QueueWait is the longest a request waits in the admission queue
	// before being shed with 503.
	QueueWait time.Duration
	// RetryAfter is the hint returned in the Retry-After header of 503
	// responses.
	RetryAfter time.Duration
	// MaxBodyBytes caps POST bodies; oversized requests get 413. <0
	// disables.
	MaxBodyBytes int64
	// MaxRows and MaxBindings are the per-query resource budget (see
	// sparql.Budget). <0 disables.
	MaxRows     int
	MaxBindings int
	// Parallelism is the per-query worker budget for the engine's
	// morsel-driven intra-query parallelism (see sparql.Engine). 0 uses
	// the engine default (GOMAXPROCS); <0 forces serial execution.
	Parallelism int
	// SlowQueryThreshold is the wall time at or over which a query is
	// written to SlowQueryLog with its profile attached. 0 uses the
	// default (1s); <0 logs every query.
	SlowQueryThreshold time.Duration
	// SlowQueryLog, when set, receives one JSON line per slow query
	// (see sparql.SlowQueryRecord). Nil disables slow-query logging.
	SlowQueryLog io.Writer
	// EnablePprof mounts the net/http/pprof handlers under
	// /debug/pprof/. Off by default: profiles expose internals, so the
	// flag is an explicit operator decision.
	EnablePprof bool
}

// DefaultConfig returns the production defaults: 30s deadlines, twice
// GOMAXPROCS concurrent queries with a short bounded queue, 1 MiB
// bodies, and a budget generous enough for analytical queries but
// finite.
func DefaultConfig() Config {
	return Config{
		QueryTimeout:       30 * time.Second,
		UpdateTimeout:      30 * time.Second,
		MaxConcurrent:      2 * runtime.GOMAXPROCS(0),
		MaxQueue:           32,
		QueueWait:          2 * time.Second,
		RetryAfter:         1 * time.Second,
		MaxBodyBytes:       1 << 20,
		MaxRows:            5_000_000,
		MaxBindings:        50_000_000,
		SlowQueryThreshold: 1 * time.Second,
	}
}

// withDefaults fills zero fields from DefaultConfig and maps explicit
// negatives to "disabled".
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.QueryTimeout == 0 {
		c.QueryTimeout = d.QueryTimeout
	}
	if c.UpdateTimeout == 0 {
		c.UpdateTimeout = d.UpdateTimeout
	}
	if c.MaxConcurrent == 0 {
		c.MaxConcurrent = d.MaxConcurrent
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = d.MaxQueue
	}
	if c.QueueWait == 0 {
		c.QueueWait = d.QueueWait
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = d.RetryAfter
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	if c.MaxRows == 0 {
		c.MaxRows = d.MaxRows
	}
	if c.MaxBindings == 0 {
		c.MaxBindings = d.MaxBindings
	}
	if c.SlowQueryThreshold == 0 {
		c.SlowQueryThreshold = d.SlowQueryThreshold
	}
	return c
}

// admission is a semaphore-based admission controller with a bounded
// wait queue: up to cap(slots) requests run, up to cap(queue) more wait
// (at most wait long), and everything beyond that is shed immediately.
type admission struct {
	slots chan struct{}
	queue chan struct{}
	wait  time.Duration
	drain chan struct{}
	once  sync.Once
}

func newAdmission(maxConcurrent, maxQueue int, wait time.Duration) *admission {
	if maxConcurrent <= 0 {
		return nil // admission control disabled
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxQueue),
		wait:  wait,
		drain: make(chan struct{}),
	}
}

// acquire admits the request or reports shed=true. A nil controller
// admits everything. The returned release must be called exactly once.
func (a *admission) acquire(ctx context.Context) (release func(), ok bool) {
	if a == nil {
		return func() {}, true
	}
	select {
	case <-a.drain:
		return nil, false
	default:
	}
	// Fast path: free slot.
	select {
	case a.slots <- struct{}{}:
		return a.releaseFn(), true
	default:
	}
	// Join the bounded wait queue, or shed.
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, false
	}
	defer func() { <-a.queue }()
	timer := time.NewTimer(a.wait)
	defer timer.Stop()
	select {
	case a.slots <- struct{}{}:
		return a.releaseFn(), true
	case <-timer.C:
		return nil, false
	case <-ctx.Done():
		return nil, false
	case <-a.drain:
		return nil, false
	}
}

func (a *admission) releaseFn() func() {
	var once sync.Once
	return func() { once.Do(func() { <-a.slots }) }
}

// close sheds all queued waiters and every future arrival.
func (a *admission) close() {
	if a == nil {
		return
	}
	a.once.Do(func() { close(a.drain) })
}

// Server is the SPARQL protocol handler. Mount it on an http.Server:
//
//	h := httpapi.NewServer(st)
//	http.ListenAndServe(":8080", h)
//
// Endpoints:
//
//	GET  /sparql?query=...&model=...   — query via URL parameter
//	POST /sparql                       — query via form or raw body
//	                                     (Content-Type application/sparql-query
//	                                     or application/x-www-form-urlencoded)
//	POST /update                       — update via form or raw body
//	                                     (application/sparql-update)
//	POST /algo                         — graph analytics (JSON body:
//	                                     pagerank, wcc or triangles over a
//	                                     projected model; see algoRequest)
//	GET  /stats                        — dataset statistics (JSON)
//	GET  /export?model=...             — stream one model as N-Quads
//	GET  /metrics                      — Prometheus text exposition
//	GET  /debug/pprof/*                — runtime profiles (Config.EnablePprof)
//
// SELECT and ASK return application/sparql-results+json; CONSTRUCT
// returns application/n-quads. The optional `model` parameter names the
// semantic or virtual model to query ("" = all models).
//
// Requests run under the guardrails in Config: per-request deadlines, a
// per-query resource budget, and a semaphore-based admission controller
// that sheds excess load with 503 + Retry-After. Error responses carry
// a JSON body: {"error": "...", "kind": "..."}.
type Server struct {
	// eng is swapped wholesale when a replication follower
	// re-bootstraps (SwapStore); all handlers load it once per request
	// through engine().
	eng atomic.Pointer[sparql.Engine]
	mux *http.ServeMux
	cfg Config
	adm *admission
	// shedCount counts requests rejected with 503 (exported by /metrics).
	shedCount atomic.Int64
	// inflight counts admitted requests still executing, for Drain.
	inflight sync.WaitGroup
	draining atomic.Bool
	// ReadOnly disables the /update endpoint.
	ReadOnly bool
	// wal, when attached, journals updates and serves POST /checkpoint
	// plus the GET /wal replication tail.
	wal *wal.Log
	// follower, when attached, adds replication lag to /stats and
	// /metrics and optionally fails stale reads with 503.
	follower *repl.Follower
	// algo counts POST /algo runs and errors; algoCSR memoizes the most
	// recent graph projection per store version.
	algo    algoStats
	algoCSR csrCache
}

// NewServer builds a handler over the store with DefaultConfig.
func NewServer(st *store.Store) *Server {
	return NewServerWithConfig(st, DefaultConfig())
}

// NewServerWithConfig builds a handler with explicit guardrails. Zero
// Config fields take their DefaultConfig values; negative values
// disable the corresponding limit.
func NewServerWithConfig(st *store.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		mux: http.NewServeMux(),
		cfg: cfg,
		adm: newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueWait),
	}
	s.eng.Store(s.newEngine(st))
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.HandleFunc("/update", s.handleUpdate)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/export", s.handleExport)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/algo", s.handleAlgo)
	s.mux.HandleFunc("/checkpoint", s.handleCheckpoint)
	s.mux.HandleFunc("/wal", s.handleWalTail)
	if cfg.EnablePprof {
		// Mounted per-handler (not via the net/http/pprof init side
		// effect on DefaultServeMux) so the profiles exist only on this
		// mux and only when the operator opted in.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// newEngine builds a query engine over st with the server's
// guardrails applied — the single construction path shared by
// NewServerWithConfig and SwapStore.
func (s *Server) newEngine(st *store.Store) *sparql.Engine {
	eng := sparql.NewEngine(st)
	if s.cfg.Parallelism < 0 {
		eng.Parallelism = 1
	} else {
		eng.Parallelism = s.cfg.Parallelism
	}
	eng.Limits = sparql.Budget{
		// Timeouts are applied per request from the HTTP layer so
		// admission-queue wait never eats into execution time.
		MaxRows:     max(s.cfg.MaxRows, 0),
		MaxBindings: max(s.cfg.MaxBindings, 0),
	}
	if s.cfg.SlowQueryLog != nil {
		eng.SlowQueryLog = s.cfg.SlowQueryLog
		if s.cfg.SlowQueryThreshold > 0 {
			eng.SlowQueryThreshold = s.cfg.SlowQueryThreshold
		} // <0 means log everything: the engine's zero threshold
	}
	return eng
}

// engine returns the current query engine. Handlers must load it once
// per request and use that copy throughout, so a concurrent SwapStore
// cannot split one request across two stores.
func (s *Server) engine() *sparql.Engine { return s.eng.Load() }

// SwapStore replaces the server's store with a fresh one, rebuilding
// the query engine around it. Replication followers call it after a
// re-bootstrap; in-flight requests finish against the engine they
// loaded at admission. Engine-level metrics (query counters, plan
// cache) restart from zero with the new engine.
func (s *Server) SwapStore(st *store.Store) {
	s.eng.Store(s.newEngine(st))
}

// Config returns the effective (default-filled) configuration.
func (s *Server) Config() Config { return s.cfg }

// Drain puts the server into shutdown mode: every new or queued request
// is shed with 503, and Drain blocks until all in-flight requests have
// completed (or ctx fires). Pair it with http.Server.Shutdown for a
// graceful stop.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.adm.close()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// admit runs the admission controller for one request, writing the 503
// itself when the request is shed.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (func(), bool) {
	if s.draining.Load() {
		s.shed(w, "server is shutting down")
		return nil, false
	}
	free, ok := s.adm.acquire(r.Context())
	if !ok {
		if r.Context().Err() != nil {
			// Client went away while queued; nothing useful to write.
			return nil, false
		}
		s.shed(w, "server is at capacity")
		return nil, false
	}
	s.inflight.Add(1)
	return func() { free(); s.inflight.Done() }, true
}

func (s *Server) shed(w http.ResponseWriter, msg string) {
	s.shedCount.Add(1)
	secs := int(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	writeJSONError(w, http.StatusServiceUnavailable, "overloaded", msg)
}

// requestCtx derives the execution context for a request.
func requestCtx(r *http.Request, timeout time.Duration) (context.Context, context.CancelFunc) {
	if timeout > 0 {
		return context.WithTimeout(r.Context(), timeout)
	}
	return r.Context(), func() {}
}

// readBody reads a raw POST body up to the configured cap, reporting
// overflow so the handler can answer 413 instead of truncating the
// request into a confusing parse error.
func (s *Server) readBody(r *http.Request) (string, error) {
	limit := s.cfg.MaxBodyBytes
	if limit <= 0 {
		b, err := io.ReadAll(r.Body)
		return string(b), err
	}
	b, err := io.ReadAll(io.LimitReader(r.Body, limit+1))
	if err != nil {
		return "", err
	}
	if int64(len(b)) > limit {
		return "", errBodyTooLarge
	}
	return string(b), nil
}

var errBodyTooLarge = errors.New("request body exceeds the configured limit")

// parseFormBounded parses a form body under the same cap as raw bodies.
func (s *Server) parseFormBounded(w http.ResponseWriter, r *http.Request) error {
	if s.cfg.MaxBodyBytes > 0 && r.Body != nil {
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	}
	if err := r.ParseForm(); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errBodyTooLarge
		}
		return err
	}
	return nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var query, model string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
		model = r.URL.Query().Get("model")
	case http.MethodPost:
		ct := r.Header.Get("Content-Type")
		if strings.HasPrefix(ct, "application/sparql-query") {
			body, err := s.readBody(r)
			if err != nil {
				bodyError(w, err)
				return
			}
			query = body
			model = r.URL.Query().Get("model")
		} else {
			if err := s.parseFormBounded(w, r); err != nil {
				bodyError(w, err)
				return
			}
			query = r.PostForm.Get("query")
			model = r.PostForm.Get("model")
		}
	default:
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	if strings.TrimSpace(query) == "" {
		writeJSONError(w, http.StatusBadRequest, "request", "missing query")
		return
	}

	form, err := queryForm(query)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "parse", err.Error())
		return
	}

	if s.rejectStale(w) {
		return
	}
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := requestCtx(r, s.cfg.QueryTimeout)
	defer cancel()
	eng := s.engine()

	switch form {
	case sparql.FormAsk:
		v, err := eng.AskContext(ctx, model, query)
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		WriteBooleanJSON(w, v)
	case sparql.FormConstruct, sparql.FormDescribe:
		var quads []rdf.Quad
		var err error
		if form == sparql.FormConstruct {
			quads, err = eng.ConstructContext(ctx, model, query)
		} else {
			quads, err = eng.DescribeContext(ctx, model, query)
		}
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/n-quads")
		nw := ntriples.NewWriter(w)
		nw.WriteAll(quads)
	default:
		res, err := eng.QueryContext(ctx, model, query)
		if err != nil {
			queryError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/sparql-results+json")
		WriteResultsJSON(w, res)
	}
}

// queryForm parses just enough to dispatch on the query form.
func queryForm(query string) (sparql.QueryForm, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return 0, err
	}
	return q.Form, nil
}

func bodyError(w http.ResponseWriter, err error) {
	if errors.Is(err, errBodyTooLarge) {
		writeJSONError(w, http.StatusRequestEntityTooLarge, "too-large", err.Error())
		return
	}
	writeJSONError(w, http.StatusBadRequest, "request", err.Error())
}

// queryError maps an engine error onto an HTTP status + JSON body.
func queryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, sparql.ErrTimeout):
		writeJSONError(w, http.StatusGatewayTimeout, "timeout", err.Error())
	case errors.Is(err, sparql.ErrBudgetExceeded):
		writeJSONError(w, http.StatusBadRequest, "budget-exceeded", err.Error())
	case errors.Is(err, sparql.ErrCanceled):
		// The client is usually gone; the status is best-effort.
		writeJSONError(w, http.StatusRequestTimeout, "canceled", err.Error())
	case errors.Is(err, sparql.ErrInternal):
		writeJSONError(w, http.StatusInternalServerError, "internal", "internal query error")
	case strings.Contains(err.Error(), "unknown model"):
		writeJSONError(w, http.StatusNotFound, "unknown-model", err.Error())
	default:
		writeJSONError(w, http.StatusBadRequest, "query", err.Error())
	}
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if s.ReadOnly {
		writeJSONError(w, http.StatusForbidden, "read-only", "updates are disabled on this endpoint")
		return
	}
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	var request, model string
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/sparql-update") {
		body, err := s.readBody(r)
		if err != nil {
			bodyError(w, err)
			return
		}
		request = body
		model = r.URL.Query().Get("model")
	} else {
		if err := s.parseFormBounded(w, r); err != nil {
			bodyError(w, err)
			return
		}
		request = r.PostForm.Get("update")
		model = r.PostForm.Get("model")
	}
	if strings.TrimSpace(request) == "" {
		writeJSONError(w, http.StatusBadRequest, "request", "missing update")
		return
	}
	if model == "" {
		writeJSONError(w, http.StatusBadRequest, "request", "updates require an explicit model parameter")
		return
	}

	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	ctx, cancel := requestCtx(r, s.cfg.UpdateTimeout)
	defer cancel()

	res, err := s.engine().UpdateContext(ctx, model, request)
	if err != nil {
		queryError(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"inserted":%d,"deleted":%d}`+"\n", res.Inserted, res.Deleted)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	model := r.URL.Query().Get("model")
	var models []string
	if model != "" {
		models = append(models, model)
	}
	eng := s.engine()
	st, err := eng.Store().Stats(models...)
	if err != nil {
		writeJSONError(w, http.StatusNotFound, "unknown-model", err.Error())
		return
	}
	rep := eng.Store().Storage()
	ps := eng.ParallelStats()
	par := eng.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0) // the engine default, reported as its effective value
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"quads":%d,"subjects":%d,"predicates":%d,"objects":%d,"namedGraphs":%d,"storageBytes":%d,"openCursors":%d,`+
		`"parallelism":%d,"parallelQueries":%d,"parallelWorkers":%d,"parallelMorsels":%d,"parallelHashBuilds":%d,"activeWorkers":%d`,
		st.Quads, st.Subjects, st.Predicates, st.Objects, st.NamedGraphs, rep.Total, eng.Store().OpenCursors(),
		par, ps.Queries, ps.Workers, ps.Morsels, ps.HashBuilds, ps.ActiveWorkers)
	var algoRuns, algoErrors int64
	for i := range algoNames {
		algoRuns += s.algo.runs[i].Load()
		algoErrors += s.algo.errors[i].Load()
	}
	fmt.Fprintf(w, `,"algoRuns":%d,"algoErrors":%d,"algoCSRCacheHits":%d,"algoCSRCacheMisses":%d`,
		algoRuns, algoErrors, s.algo.cacheHits.Load(), s.algo.cacheMisses.Load())
	if s.wal != nil {
		ws := s.wal.Stats()
		fmt.Fprintf(w, `,"walBytes":%d,"walRecords":%d,"walSeq":%d,"checkpoints":%d,"checkpointErrors":%d,`+
			`"lastCheckpointBytes":%d,"lastCheckpointSeconds":%g,"replayedRecords":%d,"tornBytesDropped":%d,`+
			`"checkpointFormat":%q,"fullCheckpoints":%d,"incrementalCheckpoints":%d,"deltaChainLen":%d,"deltaChainBytes":%d`,
			ws.WalBytes, ws.WalRecords, ws.Seq, ws.Checkpoints, ws.CheckpointErrors,
			ws.LastCheckpointBytes, ws.LastCheckpointDuration.Seconds(), ws.ReplayedRecords, ws.TornBytesDropped,
			ws.CheckpointFormat, ws.FullCheckpoints, ws.IncrementalCheckpoints, ws.DeltaChainLen, ws.DeltaChainBytes)
	}
	if s.follower != nil {
		fs := s.follower.Status()
		fmt.Fprintf(w, `,"repl":{"leader":%q,"state":%q,"degraded":%t,"epoch":%d,"offset":%d,"nextSeq":%d,`+
			`"bytesBehind":%d,"recordsBehind":%d,"lastContactMS":%g,"appliedRecords":%d,"bootstraps":%d,`+
			`"divergences":%d,"epochAdoptions":%d,"retryErrors":%d,"staleRejected":%d}`,
			fs.Leader, fs.State, fs.Degraded, fs.Epoch, fs.Offset, fs.NextSeq,
			fs.BytesBehind, fs.RecordsBehind, fs.LastContactMS, fs.AppliedRecords, fs.Bootstraps,
			fs.Divergences, fs.EpochAdoptions, fs.RetryErrors, fs.StaleRejected)
	}
	fmt.Fprintln(w, "}")
}

// handleExport streams every quad of one model as N-Quads. It is the
// production consumer of store.Cursor: the snapshot cursor lets the
// handler write row by row without holding the store lock for the whole
// response, and the deferred Close keeps the OpenCursors gauge honest
// even when the client disconnects mid-stream.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "nquads":
	case "snapshot":
		// The directive-carrying snapshot format (models, virtual models,
		// index config): unlike a plain N-Quads export, this round-trips
		// through store.Restore and pgrdf serve -restore. With a WAL
		// attached this is also the replication bootstrap: the snapshot
		// streams under the commit lock so the position in the headers
		// corresponds exactly to the bytes on the wire.
		st := s.engine().Store()
		if s.wal != nil {
			pos, release := s.wal.BeginSnapshot()
			defer release()
			setPositionHeaders(w.Header(), pos)
			w.Header().Set(repl.HeaderSnapshotQuads, strconv.Itoa(st.Len()))
		}
		w.Header().Set("Content-Type", "application/n-quads")
		if err := st.Snapshot(w); err != nil {
			return // headers already sent; the stream just ends short
		}
		return
	default:
		writeJSONError(w, http.StatusBadRequest, "request",
			fmt.Sprintf("unknown export format %q (want nquads or snapshot)", format))
		return
	}
	model := r.URL.Query().Get("model")
	if model == "" {
		writeJSONError(w, http.StatusBadRequest, "request", "missing model parameter")
		return
	}
	st := s.engine().Store()
	m := st.LookupModel(model)
	if m == store.NoID {
		writeJSONError(w, http.StatusNotFound, "unknown-model", fmt.Sprintf("unknown model %q", model))
		return
	}
	p := store.AnyPattern()
	p.M = m
	cur := st.Cursor(p)
	defer cur.Close()
	w.Header().Set("Content-Type", "application/n-quads")
	nw := ntriples.NewWriter(w)
	ctx := r.Context()
	for {
		q, ok := cur.NextQuad()
		if !ok {
			break
		}
		if ctx.Err() != nil {
			return // client went away mid-stream
		}
		if err := nw.Write(q); err != nil {
			return
		}
	}
	if err := nw.Flush(); err != nil {
		return
	}
}
