package httpapi

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"

	"repro/internal/store"
)

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// validateExposition parses every line of the scrape as Prometheus
// text format: a # HELP/# TYPE comment or `name{labels} value`.
func validateExposition(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	sc := bufio.NewScanner(strings.NewReader(body))
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) < 4 {
				t.Errorf("line %d: malformed comment %q", lineno, line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Errorf("line %d: no value separator in %q", lineno, line)
			continue
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil && value != "+Inf" {
			t.Errorf("line %d: value %q is not a float: %v", lineno, value, err)
		}
		name := series
		if i := strings.IndexByte(series, '{'); i >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Errorf("line %d: unbalanced labels in %q", lineno, series)
			}
			name = series[:i]
			labels := series[i+1 : len(series)-1]
			for _, lv := range strings.Split(labels, ",") {
				eq := strings.IndexByte(lv, '=')
				if eq < 0 || !strings.HasPrefix(lv[eq+1:], `"`) || !strings.HasSuffix(lv, `"`) {
					t.Errorf("line %d: malformed label %q", lineno, lv)
				}
			}
		}
		if !strings.HasPrefix(name, "pgrdf_") {
			t.Errorf("line %d: metric %q lacks the pgrdf_ prefix", lineno, name)
		}
		v, _ := strconv.ParseFloat(value, 64)
		samples[series] = v
	}
	return samples
}

func TestMetricsEndpoint(t *testing.T) {
	srv := testServer(t)

	// Generate some traffic first. (A malformed query would be rejected
	// by the HTTP layer's parse step and never reach the engine, so it
	// would not show up in engine metrics — send two good ones.)
	q := url.QueryEscape(`PREFIX key: <http://pg/k/> SELECT ?x WHERE { ?x key:name ?n }`)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(srv.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	body := scrapeMetrics(t, srv.URL)
	samples := validateExposition(t, body)

	if got := samples[`pgrdf_queries_total{form="select"}`]; got != 2 {
		t.Errorf("select queries = %v, want 2", got)
	}
	if got := samples[`pgrdf_query_errors_total{form="select"}`]; got != 0 {
		t.Errorf("select errors = %v, want 0", got)
	}
	if got := samples[`pgrdf_query_duration_seconds_count{form="select"}`]; got != 2 {
		t.Errorf("duration count = %v, want 2", got)
	}
	// The +Inf bucket must equal the count.
	if got := samples[`pgrdf_query_duration_seconds_bucket{form="select",le="+Inf"}`]; got != 2 {
		t.Errorf("+Inf bucket = %v, want 2", got)
	}
	for _, want := range []string{
		"pgrdf_plan_cache_hits_total",
		"pgrdf_plan_cache_misses_total",
		"pgrdf_plan_cache_evictions_total",
		"pgrdf_plan_cache_entries",
		"pgrdf_slow_queries_total",
		"pgrdf_requests_shed_total",
		"pgrdf_quads",
		"pgrdf_dict_terms",
		"pgrdf_open_cursors",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("scrape is missing %s:\n%s", want, body)
		}
	}
	if samples["pgrdf_quads"] <= 0 {
		t.Errorf("pgrdf_quads = %v, want > 0", samples["pgrdf_quads"])
	}

	// Scraping twice is stable (no panic, counters monotone).
	again := validateExposition(t, scrapeMetrics(t, srv.URL))
	if again[`pgrdf_queries_total{form="select"}`] < 2 {
		t.Errorf("counter went backwards on second scrape")
	}
}

func TestMetricsDictStableAcrossComputedQueries(t *testing.T) {
	srv := testServer(t)
	before := validateExposition(t, scrapeMetrics(t, srv.URL))["pgrdf_dict_terms"]
	for i := 0; i < 5; i++ {
		q := url.QueryEscape(fmt.Sprintf(
			`PREFIX key: <http://pg/k/> SELECT (CONCAT(?n, "-%d") AS ?c) WHERE { ?x key:name ?n }`, i))
		resp, err := http.Get(srv.URL + "/sparql?query=" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("query %d status = %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	after := validateExposition(t, scrapeMetrics(t, srv.URL))["pgrdf_dict_terms"]
	if after != before {
		t.Errorf("dict terms grew %v -> %v across read-only computed-projection requests", before, after)
	}
}

func TestPprofGatedByConfig(t *testing.T) {
	get := func(srv string) int {
		resp, err := http.Get(srv + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Default server: pprof absent.
	srv := testServer(t)
	if code := get(srv.URL); code != http.StatusNotFound {
		t.Errorf("pprof without EnablePprof: status = %d, want 404", code)
	}
	// Opted in: pprof index responds.
	cfg := DefaultConfig()
	cfg.EnablePprof = true
	on := httptest.NewServer(NewServerWithConfig(store.New(), cfg))
	defer on.Close()
	if code := get(on.URL); code != http.StatusOK {
		t.Errorf("pprof with EnablePprof: status = %d, want 200", code)
	}
}
