// Package httpapi exposes the store over the SPARQL 1.1 Protocol: a
// query endpoint (SELECT/ASK/CONSTRUCT) returning the SPARQL 1.1 Query
// Results JSON Format, and an update endpoint. This is the service
// surface an RDF store deployment offers; Oracle exposes the same
// functionality through SEM_MATCH and its SPARQL gateway.
package httpapi

import (
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/rdf"
	"repro/internal/sparql"
)

// jsonTerm is one RDF term in the SPARQL 1.1 JSON results format.
type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

func termJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		jt := jsonTerm{Type: "literal", Value: t.Value}
		if t.Lang != "" {
			jt.Lang = t.Lang
		} else if t.Datatype != "" {
			jt.Datatype = t.Datatype
		}
		return jt
	}
}

type jsonResults struct {
	Head    jsonHead      `json:"head"`
	Results *jsonBindings `json:"results,omitempty"`
	Boolean *bool         `json:"boolean,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonBindings struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

// WriteResultsJSON encodes SELECT results in the SPARQL 1.1 Query
// Results JSON Format.
func WriteResultsJSON(w io.Writer, res *sparql.Results) error {
	out := jsonResults{
		Head:    jsonHead{Vars: res.Vars},
		Results: &jsonBindings{Bindings: make([]map[string]jsonTerm, 0, len(res.Rows))},
	}
	for _, row := range res.Rows {
		b := make(map[string]jsonTerm, len(row))
		for i, t := range row {
			if t.IsZero() {
				continue // unbound variables are simply absent
			}
			b[res.Vars[i]] = termJSON(t)
		}
		out.Results.Bindings = append(out.Results.Bindings, b)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteBooleanJSON encodes an ASK result.
func WriteBooleanJSON(w io.Writer, v bool) error {
	out := jsonResults{Boolean: &v}
	return json.NewEncoder(w).Encode(out)
}

// ParseResultsJSON decodes the JSON results format back into Results
// (used by the round-trip tests and by clients).
func ParseResultsJSON(r io.Reader) (*sparql.Results, bool, error) {
	var in jsonResults
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, false, err
	}
	if in.Boolean != nil {
		return nil, *in.Boolean, nil
	}
	res := &sparql.Results{Vars: in.Head.Vars}
	if in.Results == nil {
		return res, false, nil
	}
	for _, b := range in.Results.Bindings {
		row := make([]rdf.Term, len(res.Vars))
		for i, v := range res.Vars {
			jt, ok := b[v]
			if !ok {
				continue
			}
			switch jt.Type {
			case "uri":
				row[i] = rdf.NewIRI(jt.Value)
			case "bnode":
				row[i] = rdf.NewBlank(jt.Value)
			default:
				switch {
				case jt.Lang != "":
					row[i] = rdf.NewLangLiteral(jt.Value, jt.Lang)
				case jt.Datatype != "":
					row[i] = rdf.NewTypedLiteral(jt.Value, jt.Datatype)
				default:
					row[i] = rdf.NewLiteral(jt.Value)
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, false, nil
}

// jsonError is the error body every non-2xx response carries:
// {"error": "...", "kind": "..."}. Kind is a stable machine-readable
// slug ("timeout", "budget-exceeded", "overloaded", "too-large",
// "read-only", ...); error is the human-readable message.
type jsonError struct {
	Error string `json:"error"`
	Kind  string `json:"kind"`
}

// writeJSONError writes a structured error response.
func writeJSONError(w http.ResponseWriter, status int, kind, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(jsonError{Error: msg, Kind: kind}) //nolint:errcheck
}
