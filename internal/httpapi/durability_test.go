package httpapi

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/store"
	"repro/internal/wal"
)

// walServer starts a server backed by a WAL data dir and returns the
// pieces a durability test needs.
func walServer(t *testing.T) (*httptest.Server, *Server, *store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	h := NewServer(st)
	h.AttachWAL(l)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return srv, h, st, dir
}

func postUpdate(t *testing.T, srv *httptest.Server, model, update string) {
	t.Helper()
	form := url.Values{"update": {update}}
	if model != "" {
		form.Set("model", model)
	}
	resp, err := http.PostForm(srv.URL+"/update", form)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d: %s", resp.StatusCode, body)
	}
}

// TestUpdateJournalsAndRecovers drives a mutation through the HTTP
// layer and reopens the data dir: the recovered store must match.
func TestUpdateJournalsAndRecovers(t *testing.T) {
	srv, h, st, dir := walServer(t)
	postUpdate(t, srv, "m", `INSERT DATA { <http://pg/v1> <http://pg/k/name> "Amy" }`)
	if h.wal.Stats().WalRecords != 1 {
		t.Fatalf("wal stats after update: %+v", h.wal.Stats())
	}
	var want bytes.Buffer
	if err := st.Snapshot(&want); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	if err := h.wal.Close(); err != nil {
		t.Fatal(err)
	}

	st2, l2, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var got bytes.Buffer
	if err := st2.Snapshot(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("recovered store diverges from the served one")
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	srv, h, _, _ := walServer(t)
	postUpdate(t, srv, "m", `INSERT DATA { <http://pg/v1> <http://pg/k/name> "Amy" }`)

	// GET is rejected.
	resp, err := http.Get(srv.URL + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /checkpoint status %d, want 405", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /checkpoint status %d", resp.StatusCode)
	}
	var out struct {
		CheckpointBytes int64   `json:"checkpointBytes"`
		DurationSeconds float64 `json:"durationSeconds"`
		WalBytes        int64   `json:"walBytes"`
		WalRecords      int64   `json:"walRecords"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.CheckpointBytes == 0 || out.WalBytes != 0 || out.WalRecords != 0 {
		t.Fatalf("checkpoint response: %+v", out)
	}
	if ws := h.wal.Stats(); ws.Checkpoints != 1 {
		t.Fatalf("wal stats after checkpoint: %+v", ws)
	}
}

// TestCheckpointIncrementalEndpoint drives ?mode=incremental: after a
// full binary checkpoint, an incremental request folds the log into a
// delta file instead of rewriting the snapshot.
func TestCheckpointIncrementalEndpoint(t *testing.T) {
	srv, h, _, _ := walServer(t)
	postUpdate(t, srv, "m", `INSERT DATA { <http://pg/v1> <http://pg/k/name> "Amy" }`)

	resp, err := http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full checkpoint status %d", resp.StatusCode)
	}

	postUpdate(t, srv, "m", `INSERT DATA { <http://pg/v2> <http://pg/k/name> "Bob" }`)
	resp, err = http.Post(srv.URL+"/checkpoint?mode=incremental", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("incremental checkpoint status %d", resp.StatusCode)
	}
	var out struct {
		WalRecords             int64  `json:"walRecords"`
		CheckpointFormat       string `json:"checkpointFormat"`
		FullCheckpoints        int64  `json:"fullCheckpoints"`
		IncrementalCheckpoints int64  `json:"incrementalCheckpoints"`
		DeltaChainLen          int64  `json:"deltaChainLen"`
		DeltaChainBytes        int64  `json:"deltaChainBytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.WalRecords != 0 || out.CheckpointFormat != "binary" ||
		out.FullCheckpoints != 1 || out.IncrementalCheckpoints != 1 ||
		out.DeltaChainLen != 1 || out.DeltaChainBytes == 0 {
		t.Fatalf("incremental checkpoint response: %+v", out)
	}
	if ws := h.wal.Stats(); ws.Checkpoints != 2 || ws.IncrementalCheckpoints != 1 {
		t.Fatalf("wal stats after incremental checkpoint: %+v", ws)
	}

	// An unknown mode is a 400, not a checkpoint.
	resp, err = http.Post(srv.URL+"/checkpoint?mode=sideways", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "bad-mode") {
		t.Fatalf("mode=sideways status %d: %s", resp.StatusCode, body)
	}
}

func TestCheckpointWithoutWALIs409(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status %d, want 409: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "no-wal") {
		t.Fatalf("body lacks the no-wal error code: %s", body)
	}
}

// TestExportSnapshotRoundTrips streams /export?format=snapshot into
// store.Restore and compares exports.
func TestExportSnapshotRoundTrips(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/export?format=snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-quads" {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(body, []byte("# pgrdf-snapshot v1\n")) {
		t.Fatalf("missing snapshot header:\n%.80s", body)
	}
	r, err := store.Restore(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("restore of exported snapshot: %v", err)
	}
	if r.Len() != 4 || r.LookupModel("social") == store.NoID {
		t.Fatalf("restored %d quads, models %v", r.Len(), r.Models())
	}
}

func TestExportUnknownFormatIs400(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/export?format=xml")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

// TestStatsAndMetricsExposeWAL checks the observability surface: /stats
// JSON fields and /metrics exposition lines appear exactly when a WAL
// is attached.
func TestStatsAndMetricsExposeWAL(t *testing.T) {
	srv, _, _, _ := walServer(t)
	postUpdate(t, srv, "m", `INSERT DATA { <http://pg/v1> <http://pg/k/name> "Amy" }`)

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]any
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"walBytes", "walRecords", "walSeq", "checkpoints", "replayedRecords", "tornBytesDropped",
		"checkpointFormat", "fullCheckpoints", "incrementalCheckpoints", "deltaChainLen", "deltaChainBytes"} {
		if _, ok := stats[k]; !ok {
			t.Errorf("/stats lacks %q: %v", k, stats)
		}
	}
	if stats["walRecords"].(float64) != 1 {
		t.Errorf("walRecords = %v, want 1", stats["walRecords"])
	}

	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"pgrdf_wal_bytes ", "pgrdf_wal_records 1", "pgrdf_checkpoint_total 0",
		"pgrdf_checkpoint_full_total 0", "pgrdf_checkpoint_incremental_total 0",
		"pgrdf_checkpoint_errors_total 0", "pgrdf_checkpoint_last_bytes 0",
		"pgrdf_checkpoint_delta_chain_len 0", "pgrdf_checkpoint_delta_chain_bytes 0",
		"pgrdf_checkpoint_last_duration_seconds 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics lacks %q", want)
		}
	}

	// Without a WAL the families are absent entirely.
	plain := testServer(t)
	resp, err = http.Get(plain.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.Contains(string(body), "pgrdf_wal_") {
		t.Error("/metrics exposes WAL families without a WAL attached")
	}
	resp, err = http.Get(plain.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var plainStats map[string]any
	err = json.NewDecoder(resp.Body).Decode(&plainStats)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plainStats["walBytes"]; ok {
		t.Error("/stats exposes walBytes without a WAL attached")
	}
}
