package httpapi

// GET /metrics — Prometheus text exposition (version 0.0.4), hand
// rolled over the engine's and store's atomic counters so the endpoint
// needs no dependencies and costs one snapshot per scrape.

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// metricsWriter accumulates one exposition; HELP/TYPE headers are
// emitted once per metric family.
type metricsWriter struct {
	sb strings.Builder
}

func (m *metricsWriter) family(name, help, typ string) {
	fmt.Fprintf(&m.sb, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample writes one sample line. Labels alternate name, value; label
// values are escaped per the exposition format.
func (m *metricsWriter) sample(name string, value string, labels ...string) {
	m.sb.WriteString(name)
	if len(labels) > 0 {
		m.sb.WriteByte('{')
		for i := 0; i+1 < len(labels); i += 2 {
			if i > 0 {
				m.sb.WriteByte(',')
			}
			// %q escapes quotes, backslashes and newlines as the
			// exposition format requires.
			fmt.Fprintf(&m.sb, `%s=%q`, labels[i], labels[i+1])
		}
		m.sb.WriteByte('}')
	}
	m.sb.WriteByte(' ')
	m.sb.WriteString(value)
	m.sb.WriteByte('\n')
}

func (m *metricsWriter) counter(name, help string, v int64, labels ...string) {
	m.family(name, help, "counter")
	m.sample(name, fmt.Sprintf("%d", v), labels...)
}

func (m *metricsWriter) gauge(name, help string, v int64, labels ...string) {
	m.family(name, help, "gauge")
	m.sample(name, fmt.Sprintf("%d", v), labels...)
}

func formatLE(le float64) string {
	if le < 0 {
		return "+Inf"
	}
	return fmt.Sprintf("%g", le) // %g never emits trailing zeros
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	eng := s.engine()
	snap := eng.MetricsSnapshot()
	var m metricsWriter

	// Query counters and latency histogram, labelled by query form.
	m.family("pgrdf_queries_total", "Queries executed, by form.", "counter")
	for _, f := range snap.Forms {
		m.sample("pgrdf_queries_total", fmt.Sprintf("%d", f.Queries), "form", f.Form)
	}
	m.family("pgrdf_query_errors_total", "Queries that returned an error, by form.", "counter")
	for _, f := range snap.Forms {
		m.sample("pgrdf_query_errors_total", fmt.Sprintf("%d", f.Errors), "form", f.Form)
	}
	m.family("pgrdf_query_duration_seconds", "Query wall time, by form.", "histogram")
	for _, f := range snap.Forms {
		for _, b := range f.Buckets {
			m.sample("pgrdf_query_duration_seconds_bucket",
				fmt.Sprintf("%d", b.Count), "form", f.Form, "le", formatLE(b.LE))
		}
		m.sample("pgrdf_query_duration_seconds_sum", fmt.Sprintf("%g", f.DurationSum), "form", f.Form)
		m.sample("pgrdf_query_duration_seconds_count", fmt.Sprintf("%d", f.Queries), "form", f.Form)
	}
	m.counter("pgrdf_slow_queries_total",
		"Queries at or over the slow-query threshold.", snap.SlowQueries)

	// Plan cache.
	m.counter("pgrdf_plan_cache_hits_total", "Plan cache hits.", snap.PlanCache.Hits)
	m.counter("pgrdf_plan_cache_misses_total", "Plan cache misses (compilations).", snap.PlanCache.Misses)
	m.counter("pgrdf_plan_cache_evictions_total", "Plan cache evictions.", snap.PlanCache.Evictions)
	m.gauge("pgrdf_plan_cache_entries", "Compiled plans currently cached.", int64(snap.PlanCache.Entries))

	// Intra-query parallelism.
	m.counter("pgrdf_parallel_queries_total", "Queries that ran at least one parallel stage.", snap.Parallel.Queries)
	m.counter("pgrdf_parallel_workers_total", "Parallel worker goroutines launched.", snap.Parallel.Workers)
	m.counter("pgrdf_parallel_morsels_total", "Scan morsels executed.", snap.Parallel.Morsels)
	m.counter("pgrdf_parallel_hash_builds_total", "Partitioned hash-table builds.", snap.Parallel.HashBuilds)
	m.gauge("pgrdf_active_workers", "Live parallel worker goroutines (leak gauge).", snap.Parallel.ActiveWorkers)

	// Graph analytics (POST /algo).
	m.family("pgrdf_algo_runs_total", "Graph-algorithm runs completed, by algorithm.", "counter")
	for i, name := range algoNames {
		m.sample("pgrdf_algo_runs_total", fmt.Sprintf("%d", s.algo.runs[i].Load()), "algo", name)
	}
	m.family("pgrdf_algo_errors_total", "Graph-algorithm runs that returned an error, by algorithm.", "counter")
	for i, name := range algoNames {
		m.sample("pgrdf_algo_errors_total", fmt.Sprintf("%d", s.algo.errors[i].Load()), "algo", name)
	}
	m.counter("pgrdf_algo_csr_cache_hits_total", "Algo requests served from the cached CSR projection.", s.algo.cacheHits.Load())
	m.counter("pgrdf_algo_csr_cache_misses_total", "Algo requests that rebuilt the CSR projection.", s.algo.cacheMisses.Load())

	// Admission control.
	m.counter("pgrdf_requests_shed_total", "Requests shed with 503 by admission control.", s.shedCount.Load())

	// Store gauges.
	st := eng.Store()
	m.gauge("pgrdf_quads", "Quads stored across all models.", int64(st.Len()))
	m.gauge("pgrdf_dict_terms", "Terms in the shared dictionary.", int64(st.Dict().Len()))
	m.gauge("pgrdf_dict_lexical_bytes", "Lexical bytes held by the dictionary.", st.Dict().LexicalBytes())
	m.gauge("pgrdf_open_cursors", "Snapshot cursors not yet closed (leak gauge).", int64(st.OpenCursors()))

	// Durability (present only when the server runs with a data dir).
	if s.wal != nil {
		ws := s.wal.Stats()
		m.gauge("pgrdf_wal_bytes", "Write-ahead log size since the last checkpoint.", ws.WalBytes)
		m.gauge("pgrdf_wal_records", "Write-ahead log records since the last checkpoint.", ws.WalRecords)
		m.counter("pgrdf_checkpoint_total", "Checkpoints completed.", ws.Checkpoints)
		m.counter("pgrdf_checkpoint_full_total", "Full (whole-store) checkpoints completed.", ws.FullCheckpoints)
		m.counter("pgrdf_checkpoint_incremental_total", "Incremental (delta) checkpoints completed.", ws.IncrementalCheckpoints)
		m.counter("pgrdf_checkpoint_errors_total", "Checkpoint attempts that failed.", ws.CheckpointErrors)
		m.gauge("pgrdf_checkpoint_delta_chain_len", "Delta files in the live incremental chain.", ws.DeltaChainLen)
		m.gauge("pgrdf_checkpoint_delta_chain_bytes", "Total bytes across the live delta chain.", ws.DeltaChainBytes)
		m.gauge("pgrdf_checkpoint_last_bytes", "Size of the most recent checkpoint snapshot.", ws.LastCheckpointBytes)
		m.family("pgrdf_checkpoint_last_duration_seconds", "Wall time of the most recent checkpoint.", "gauge")
		m.sample("pgrdf_checkpoint_last_duration_seconds", fmt.Sprintf("%g", ws.LastCheckpointDuration.Seconds()))
	}

	// Replication (present only on followers).
	if s.follower != nil {
		fs := s.follower.Status()
		degraded := int64(0)
		if fs.Degraded {
			degraded = 1
		}
		m.gauge("pgrdf_repl_degraded", "1 while the leader is unreachable and reads are stale.", degraded)
		m.gauge("pgrdf_repl_offset", "Last applied byte offset in the leader's log epoch.", fs.Offset)
		m.gauge("pgrdf_repl_epoch", "Leader log epoch the follower is tailing.", int64(fs.Epoch))
		m.gauge("pgrdf_repl_bytes_behind", "Log bytes between the follower and the leader's durable end.", fs.BytesBehind)
		m.gauge("pgrdf_repl_records_behind", "Records between the follower and the leader's durable end.", fs.RecordsBehind)
		m.family("pgrdf_repl_last_contact_seconds", "Age of the last successful leader contact (-1 = never).", "gauge")
		m.sample("pgrdf_repl_last_contact_seconds", fmt.Sprintf("%g", fs.LastContactMS/1000))
		m.counter("pgrdf_repl_applied_records_total", "Log records applied since start.", fs.AppliedRecords)
		m.counter("pgrdf_repl_bootstraps_total", "Snapshot bootstraps completed.", fs.Bootstraps)
		m.counter("pgrdf_repl_divergences_total", "Divergences detected (each forces a re-bootstrap).", fs.Divergences)
		m.counter("pgrdf_repl_epoch_adoptions_total", "Leader checkpoints adopted without re-bootstrap.", fs.EpochAdoptions)
		m.counter("pgrdf_repl_retry_errors_total", "Failed leader interactions retried with backoff.", fs.RetryErrors)
		m.counter("pgrdf_repl_stale_rejected_total", "Reads refused with 503 for exceeding the staleness ceiling.", fs.StaleRejected)
	}

	// Per-index rows and scan counters.
	idx := st.IndexStatsSnapshot()
	sort.Slice(idx, func(i, j int) bool { return idx[i].Spec < idx[j].Spec })
	m.family("pgrdf_index_rows", "Rows per semantic-network index.", "gauge")
	for _, is := range idx {
		m.sample("pgrdf_index_rows", fmt.Sprintf("%d", is.Rows), "index", is.Spec)
	}
	m.family("pgrdf_index_range_scans_total", "Range scans served per index.", "counter")
	for _, is := range idx {
		m.sample("pgrdf_index_range_scans_total", fmt.Sprintf("%d", is.RangeScans), "index", is.Spec)
	}
	m.family("pgrdf_index_full_scans_total", "Full scans served per index.", "counter")
	for _, is := range idx {
		m.sample("pgrdf_index_full_scans_total", fmt.Sprintf("%d", is.FullScans), "index", is.Spec)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(m.sb.String()))
}
