package httpapi

// Durability glue: when the server runs with a data directory, the
// engine's CommitHook journals every update through the write-ahead
// log before it touches the store, and POST /checkpoint lets an
// operator snapshot + truncate on demand (DESIGN.md §12).

import (
	"fmt"
	"net/http"

	"repro/internal/sparql"
	"repro/internal/wal"
)

// AttachWAL wires the write-ahead log into the server: every update
// operation's quad delta is journaled (log first, apply second) and
// POST /checkpoint becomes live. Call it once, before serving.
func (s *Server) AttachWAL(l *wal.Log) {
	s.wal = l
	// Leaders never swap their store, so hooking the engine loaded here
	// is safe: SwapStore is only driven by a follower, which runs
	// without a WAL attached.
	s.engine().CommitHook = func(muts []sparql.Mutation, apply func() error) error {
		return l.Commit(batchOf(muts), apply)
	}
}

// batchOf converts the engine's quad delta into a WAL batch.
func batchOf(muts []sparql.Mutation) wal.Batch {
	ops := make([]wal.Op, len(muts))
	for i, m := range muts {
		kind := wal.OpDelete
		if m.Insert {
			kind = wal.OpInsert
		}
		ops[i] = wal.Op{Kind: kind, Model: m.Model, Quad: m.Quad}
	}
	return wal.Batch{Ops: ops}
}

// handleCheckpoint snapshots the store and truncates the log. Updates
// block for the duration; the response reports the checkpoint size and
// wall time. ?mode=incremental folds the log into a delta file instead
// of rewriting the full snapshot (the log may promote it to a full
// checkpoint per its chain policy — the response says which happened).
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	if s.wal == nil {
		writeJSONError(w, http.StatusConflict, "no-wal",
			"server is running without a data directory; start with -data-dir to enable checkpoints")
		return
	}
	var err error
	switch mode := r.URL.Query().Get("mode"); mode {
	case "", "full":
		err = s.wal.Checkpoint(s.engine().Store())
	case "incremental":
		err = s.wal.CheckpointIncremental(s.engine().Store())
	default:
		writeJSONError(w, http.StatusBadRequest, "bad-mode",
			fmt.Sprintf("unknown checkpoint mode %q; want full or incremental", mode))
		return
	}
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, "checkpoint", err.Error())
		return
	}
	st := s.wal.Stats()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"checkpointBytes":%d,"durationSeconds":%g,"walBytes":%d,"walRecords":%d,`+
		`"checkpointFormat":%q,"fullCheckpoints":%d,"incrementalCheckpoints":%d,"deltaChainLen":%d,"deltaChainBytes":%d}`+"\n",
		st.LastCheckpointBytes, st.LastCheckpointDuration.Seconds(), st.WalBytes, st.WalRecords,
		st.CheckpointFormat, st.FullCheckpoints, st.IncrementalCheckpoints, st.DeltaChainLen, st.DeltaChainBytes)
}
