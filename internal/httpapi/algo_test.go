package httpapi

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// algoTestStore loads a small chain + hub graph under one scheme.
func algoTestStore(t *testing.T, s pgrdf.Scheme) (*store.Store, pgrdf.ModelNames) {
	t.Helper()
	g := pg.NewGraph()
	for i := 1; i <= 10; i++ {
		if _, err := g.AddVertexWithID(pg.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Everyone follows v1; v1..v4 know their successor (one 4-cycle
	// plus chords making exactly one triangle: 1-2-3 via 1->2,2->3,3->1).
	for i := 2; i <= 10; i++ {
		if _, err := g.AddEdge(pg.ID(i), 1, "follows"); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge := func(src, dst pg.ID, label string) {
		t.Helper()
		if _, err := g.AddEdge(src, dst, label); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(1, 2, "knows")
	mustEdge(2, 3, "knows")
	st, err := pgrdf.NewStore(s)
	if err != nil {
		t.Fatal(err)
	}
	names, err := pgrdf.LoadPartitioned(st, pgrdf.NewConverter(s).Convert(g), "pg")
	if err != nil {
		t.Fatal(err)
	}
	return st, names
}

func postAlgo(t *testing.T, url string, body map[string]any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/algo", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestAlgoEndpoint(t *testing.T) {
	for _, s := range pgrdf.Schemes {
		t.Run(s.String(), func(t *testing.T) {
			st, names := algoTestStore(t, s)
			h := NewServer(st)
			srv := httptest.NewServer(h)
			defer srv.Close()

			// PageRank with auto-detected scheme: v1 collects the mass.
			resp := postAlgo(t, srv.URL, map[string]any{
				"algo": "pagerank", "model": names.All, "k": 3,
			})
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status = %d", resp.StatusCode)
			}
			var pr algoResponse
			if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if pr.Scheme != s.String() {
				t.Fatalf("scheme = %q, want %q (auto-detect)", pr.Scheme, s)
			}
			if pr.Vertices != 10 {
				t.Fatalf("vertices = %d, want 10", pr.Vertices)
			}
			if len(pr.Top) != 3 || pr.Top[0].Term != "http://pg/v1" {
				t.Fatalf("top = %+v, want v1 first", pr.Top)
			}
			if !pr.Converged || pr.CSRCached {
				t.Fatalf("converged=%v cached=%v", pr.Converged, pr.CSRCached)
			}

			// Second request over the same projection hits the CSR cache.
			resp = postAlgo(t, srv.URL, map[string]any{
				"algo": "wcc", "model": names.All, "scheme": s.String(),
			})
			var wcc algoResponse
			if err := json.NewDecoder(resp.Body).Decode(&wcc); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if !wcc.CSRCached {
				t.Fatal("expected CSR cache hit on second run")
			}
			if wcc.Components != 1 {
				t.Fatalf("components = %d, want 1", wcc.Components)
			}

			resp = postAlgo(t, srv.URL, map[string]any{
				"algo": "triangles", "model": names.All,
			})
			var tr algoResponse
			if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if tr.Triangles == nil || *tr.Triangles != 1 {
				t.Fatalf("triangles = %v, want 1", tr.Triangles)
			}

			// A write invalidates the cached projection.
			if _, err := st.Insert(names.Topology, figureQuad()); err != nil {
				t.Fatal(err)
			}
			resp = postAlgo(t, srv.URL, map[string]any{
				"algo": "wcc", "model": names.All, "scheme": s.String(),
			})
			var wcc2 algoResponse
			if err := json.NewDecoder(resp.Body).Decode(&wcc2); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if wcc2.CSRCached {
				t.Fatal("cache must be invalidated by a store mutation")
			}
			if wcc2.Components != 2 {
				t.Fatalf("components = %d, want 2 after adding a detached edge", wcc2.Components)
			}

			// Stats and metrics reflect the runs.
			stats := fetch(t, srv.URL+"/stats")
			if !strings.Contains(stats, `"algoRuns":4`) {
				t.Fatalf("stats missing algoRuns: %s", stats)
			}
			metrics := fetch(t, srv.URL+"/metrics")
			for _, want := range []string{
				`pgrdf_algo_runs_total{algo="pagerank"} 1`,
				`pgrdf_algo_runs_total{algo="wcc"} 2`,
				`pgrdf_algo_runs_total{algo="triangles"} 1`,
				`pgrdf_algo_csr_cache_hits_total 2`,
			} {
				if !strings.Contains(metrics, want) {
					t.Fatalf("metrics missing %q", want)
				}
			}
		})
	}
}

// figureQuad is a detached relationship between two fresh vertices.
func figureQuad() rdf.Quad {
	return rdf.Quad{
		S: rdf.NewIRI("http://pg/v98"),
		P: rdf.NewIRI("http://pg/r/follows"),
		O: rdf.NewIRI("http://pg/v99"),
	}
}

func TestAlgoErrors(t *testing.T) {
	st, names := algoTestStore(t, pgrdf.NG)
	srv := httptest.NewServer(NewServer(st))
	defer srv.Close()

	resp := postAlgo(t, srv.URL, map[string]any{"algo": "pagerankz"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown algo: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postAlgo(t, srv.URL, map[string]any{"algo": "wcc", "model": "nope"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postAlgo(t, srv.URL, map[string]any{"algo": "wcc", "model": names.All, "scheme": "XX"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scheme: status = %d", resp.StatusCode)
	}
	resp.Body.Close()

	resp, err := http.Get(srv.URL + "/algo")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestAlgoBudgetExceeded(t *testing.T) {
	st, names := algoTestStore(t, pgrdf.NG)
	cfg := DefaultConfig()
	cfg.MaxBindings = 5 // five work units: trips during projection
	srv := httptest.NewServer(NewServerWithConfig(st, cfg))
	defer srv.Close()

	resp := postAlgo(t, srv.URL, map[string]any{"algo": "pagerank", "model": names.All})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if je := decodeError(t, resp); je.Kind != "budget-exceeded" {
		t.Fatalf("kind = %q", je.Kind)
	}
	resp.Body.Close()
	if n := st.OpenCursors(); n != 0 {
		t.Fatalf("leaked %d cursors", n)
	}
}

// TestAlgoAdmissionAndDrain proves /algo participates in admission
// control and graceful drain exactly like the query endpoints.
func TestAlgoAdmissionAndDrain(t *testing.T) {
	st, names := algoTestStore(t, pgrdf.NG)
	h := NewServer(st)
	srv := httptest.NewServer(h)
	defer srv.Close()

	// Drain: everything is shed with 503 afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := h.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp := postAlgo(t, srv.URL, map[string]any{"algo": "wcc", "model": names.All})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("drained status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 must carry Retry-After")
	}
	resp.Body.Close()

	metrics := fetch(t, srv.URL+"/metrics")
	if !strings.Contains(metrics, "pgrdf_requests_shed_total 1") {
		t.Fatalf("shed counter missing: %s", metrics)
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
