package httpapi

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/store"
)

func guardTestStore(t *testing.T, n int) *store.Store {
	t.Helper()
	st := store.New()
	quads := make([]rdf.Quad, 0, n)
	for i := 0; i < n; i++ {
		quads = append(quads, rdf.Quad{
			S: rdf.NewIRI(fmt.Sprintf("http://pg/v%d", i)),
			P: rdf.NewIRI("http://pg/r/follows"),
			O: rdf.NewIRI(fmt.Sprintf("http://pg/v%d", (i*7+1)%n)),
		})
	}
	if _, err := st.Load("net", quads); err != nil {
		t.Fatal(err)
	}
	return st
}

func decodeError(t *testing.T, resp *http.Response) jsonError {
	t.Helper()
	var je jsonError
	if err := json.NewDecoder(resp.Body).Decode(&je); err != nil {
		t.Fatalf("error body is not JSON: %v", err)
	}
	return je
}

// TestOversizedBodyReturns413 covers both raw and form POST bodies on
// /sparql and /update: oversized requests must get a clear 413, not a
// truncated-parse 400.
func TestOversizedBodyReturns413(t *testing.T) {
	st := guardTestStore(t, 10)
	cfg := DefaultConfig()
	cfg.MaxBodyBytes = 512
	srv := httptest.NewServer(NewServerWithConfig(st, cfg))
	defer srv.Close()

	big := "SELECT * WHERE { ?s ?p ?o } #" + strings.Repeat("x", 4096)

	resp, err := http.Post(srv.URL+"/sparql", "application/sparql-query", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("raw query status = %d, want 413", resp.StatusCode)
	}
	if je := decodeError(t, resp); je.Kind != "too-large" {
		t.Errorf("kind = %q", je.Kind)
	}

	resp2, err := http.PostForm(srv.URL+"/sparql", url.Values{"query": {big}})
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("form query status = %d, want 413", resp2.StatusCode)
	}

	resp3, err := http.Post(srv.URL+"/update", "application/sparql-update",
		strings.NewReader("INSERT DATA { <http://a> <http://b> \""+strings.Repeat("y", 4096)+"\" }"))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("update status = %d, want 413", resp3.StatusCode)
	}

	// A request under the cap still succeeds.
	resp4, err := http.Post(srv.URL+"/sparql", "application/sparql-query",
		strings.NewReader("SELECT * WHERE { ?s ?p ?o } LIMIT 1"))
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != 200 {
		t.Fatalf("small query status = %d", resp4.StatusCode)
	}
}

// TestReadOnlyUpdateJSON403 is the regression test for the read-only
// endpoint: 403 with a structured JSON body, on every method.
func TestReadOnlyUpdateJSON403(t *testing.T) {
	st := guardTestStore(t, 5)
	h := NewServer(st)
	h.ReadOnly = true
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.PostForm(srv.URL+"/update", url.Values{
		"update": {`INSERT DATA { <http://a> <http://b> <http://c> }`},
		"model":  {"net"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q, want application/json", ct)
	}
	je := decodeError(t, resp)
	if je.Kind != "read-only" || je.Error == "" {
		t.Errorf("error body = %+v", je)
	}
}

// TestQueryTimeoutReturns504: a query held down by fault-injected scan
// latency exceeds the per-request deadline and maps to 504 + JSON.
func TestQueryTimeoutReturns504(t *testing.T) {
	st := guardTestStore(t, 2000)
	fi := store.NewFaultInjector()
	fi.StallScans(16, 100*time.Microsecond)
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)

	cfg := DefaultConfig()
	cfg.QueryTimeout = 20 * time.Millisecond
	srv := httptest.NewServer(NewServerWithConfig(st, cfg))
	defer srv.Close()

	q := url.QueryEscape(`SELECT * WHERE { ?a ?p ?b . ?c ?q ?d . ?e ?r ?f }`)
	start := time.Now()
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("timed-out query held the connection for %v", elapsed)
	}
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504", resp.StatusCode)
	}
	if je := decodeError(t, resp); je.Kind != "timeout" {
		t.Errorf("kind = %q", je.Kind)
	}
}

// TestBudgetExceededReturns400: an over-budget query gets a structured
// 400 with kind budget-exceeded.
func TestBudgetExceededReturns400(t *testing.T) {
	st := guardTestStore(t, 500)
	cfg := DefaultConfig()
	cfg.MaxBindings = 1000
	srv := httptest.NewServer(NewServerWithConfig(st, cfg))
	defer srv.Close()

	q := url.QueryEscape(`SELECT * WHERE { ?a ?p ?b . ?c ?q ?d }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if je := decodeError(t, resp); je.Kind != "budget-exceeded" {
		t.Errorf("kind = %q", je.Kind)
	}
}

// TestAdmissionControlShedsWith503 saturates a 1-slot, 0-queue server
// with slow queries: exactly one runs at a time, in-flight work
// completes, and excess load is shed with 503 + Retry-After.
func TestAdmissionControlShedsWith503(t *testing.T) {
	st := guardTestStore(t, 3000)
	fi := store.NewFaultInjector()
	fi.StallScans(8, 200*time.Microsecond)
	st.SetFaultInjector(fi)
	defer st.SetFaultInjector(nil)

	cfg := DefaultConfig()
	cfg.MaxConcurrent = 1
	cfg.MaxQueue = 1
	cfg.QueueWait = 10 * time.Millisecond
	cfg.QueryTimeout = 5 * time.Second
	srv := httptest.NewServer(NewServerWithConfig(st, cfg))
	defer srv.Close()

	// Each query scans 3000 rows with ~75ms of injected latency.
	q := url.QueryEscape(`SELECT (COUNT(?a) AS ?n) WHERE { ?a ?p ?b }`)
	const clients = 8
	var wg sync.WaitGroup
	statuses := make([]int, clients)
	retryAfter := make([]string, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/sparql?query=" + q)
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			resp.Body.Close()
			statuses[i] = resp.StatusCode
			retryAfter[i] = resp.Header.Get("Retry-After")
		}(i)
	}
	wg.Wait()

	ok, shed := 0, 0
	for i, s := range statuses {
		switch s {
		case 200:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if retryAfter[i] == "" {
				t.Errorf("503 response %d missing Retry-After", i)
			}
		default:
			t.Errorf("client %d: unexpected status %d", i, s)
		}
	}
	if ok == 0 {
		t.Error("no request completed under saturation")
	}
	if shed == 0 {
		t.Error("no request was shed under saturation")
	}
	t.Logf("saturation: %d ok, %d shed", ok, shed)
}

// TestDrainShedsNewRequests: after Drain, new queries get 503 while the
// server finishes cleanly.
func TestDrainShedsNewRequests(t *testing.T) {
	st := guardTestStore(t, 10)
	h := NewServer(st)
	srv := httptest.NewServer(h)
	defer srv.Close()

	dctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := h.Drain(dctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELECT * WHERE { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain status = %d, want 503", resp.StatusCode)
	}
	if je := decodeError(t, resp); je.Kind != "overloaded" {
		t.Errorf("kind = %q", je.Kind)
	}
}
