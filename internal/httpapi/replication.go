package httpapi

// Replication glue (DESIGN.md §13). Leader side: GET /wal streams
// CRC-framed log records from a byte offset, long-polling when the
// follower is caught up; the bootstrap snapshot rides on
// /export?format=snapshot (see handleExport). Follower side:
// AttachFollower surfaces replication lag in /stats and /metrics and
// optionally fails stale reads with 503.

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/repl"
	"repro/internal/wal"
)

// maxPollWait caps how long one /wal request may be held open so a
// misconfigured client cannot pin a connection indefinitely.
const maxPollWait = 30 * time.Second

// defaultTailChunk bounds one tail response when the client sends no
// max parameter.
const defaultTailChunk = 4 << 20

// setPositionHeaders writes a replication position into response
// headers (shared by the snapshot and tail handlers).
func setPositionHeaders(h http.Header, pos wal.Position) {
	h.Set(repl.HeaderID, pos.ID)
	h.Set(repl.HeaderEpoch, strconv.FormatUint(pos.Epoch, 10))
	h.Set(repl.HeaderOffset, strconv.FormatInt(pos.Offset, 10))
	h.Set(repl.HeaderSeq, strconv.FormatUint(pos.NextSeq, 10))
	h.Set(repl.HeaderEpochStartSeq, strconv.FormatUint(pos.EpochStartSeq, 10))
}

// handleWalTail serves GET /wal?from=&epoch=&id=&wait=&max= — raw
// framed record bytes starting at the requested offset of the current
// log epoch. An empty log at the requested position long-polls up to
// `wait` for new records. A position outside the leader's history
// answers 409 with a repl.Diverged body carrying the leader's current
// position, so the follower can decide between epoch adoption and a
// full re-bootstrap.
func (s *Server) handleWalTail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSONError(w, http.StatusMethodNotAllowed, "method", "method not allowed")
		return
	}
	if s.wal == nil {
		writeJSONError(w, http.StatusConflict, "no-wal",
			"server is running without a data directory; start with -data-dir to enable replication")
		return
	}
	q := r.URL.Query()
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "request", "bad or missing from parameter")
		return
	}
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "request", "bad or missing epoch parameter")
		return
	}
	maxBytes := defaultTailChunk
	if v := q.Get("max"); v != "" {
		if maxBytes, err = strconv.Atoi(v); err != nil || maxBytes <= 0 {
			writeJSONError(w, http.StatusBadRequest, "request", "bad max parameter")
			return
		}
	}
	var wait time.Duration
	if v := q.Get("wait"); v != "" {
		if wait, err = time.ParseDuration(v); err != nil {
			writeJSONError(w, http.StatusBadRequest, "request", "bad wait parameter")
			return
		}
		wait = min(wait, maxPollWait)
	}
	deadline := time.Now().Add(wait)

	for {
		// Grab the wake channel before reading: a record appended
		// between the read and the wait would otherwise be missed and
		// cost one full poll interval of replication lag.
		wake := s.wal.WakeChan()
		data, pos, err := s.wal.ReadLogAt(epoch, from, maxBytes)
		if err != nil {
			s.walDiverged(w, err, pos)
			return
		}
		if id := q.Get("id"); id != "" && id != pos.ID {
			s.walDiverged(w, wal.ErrDiverged, pos)
			return
		}
		if len(data) > 0 || wait <= 0 || !time.Now().Before(deadline) {
			setPositionHeaders(w.Header(), pos)
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", strconv.Itoa(len(data)))
			w.Write(data)
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return // client went away while we were holding the poll
		}
	}
}

// walDiverged answers a tail request whose position is not part of
// this leader's history.
func (s *Server) walDiverged(w http.ResponseWriter, err error, pos wal.Position) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusConflict)
	json.NewEncoder(w).Encode(repl.Diverged{
		Error:    err.Error(),
		Kind:     "diverged",
		Position: pos,
	})
}

// AttachFollower wires a replication follower into the server: the
// endpoint becomes read-only, every re-bootstrap swaps the serving
// store, /stats and /metrics report replication lag, and — when the
// follower is configured with a staleness ceiling — reads past it are
// refused with 503 + Retry-After. Call it once, before serving and
// before the follower's Run loop starts.
func (s *Server) AttachFollower(f *repl.Follower) {
	s.follower = f
	s.ReadOnly = true
	f.OnStore = s.SwapStore
	if st := f.Store(); st != nil {
		s.SwapStore(st)
	}
}

// rejectStale refuses a read with 503 when the follower's copy has
// exceeded the configured staleness ceiling. Serving stale reads is
// the default degradation mode; this only fires when the operator
// asked for bounded staleness.
func (s *Server) rejectStale(w http.ResponseWriter) bool {
	if s.follower == nil || !s.follower.Stale() {
		return false
	}
	s.follower.NoteStaleRejected()
	secs := int(s.follower.RetryAfter() / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeJSONError(w, http.StatusServiceUnavailable, "stale",
		"replica is stale: leader unreachable past the configured staleness ceiling")
	return true
}
