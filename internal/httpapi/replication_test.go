package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/repl"
	"repro/internal/store"
	"repro/internal/wal"
)

// TestStaleReads503 covers the opt-in degradation ceiling: a follower
// that has never reached its leader refuses queries with 503 and a
// Retry-After hint, while /stats keeps answering so operators can see
// why.
func TestStaleReads503(t *testing.T) {
	h := NewServer(store.New())
	f := repl.New(repl.Options{Leader: "http://127.0.0.1:0", MaxStaleness: time.Millisecond})
	h.AttachFollower(f)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELECT ?s WHERE { ?s ?p ?o }"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("stale read status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 carries no Retry-After hint")
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"stale"`) {
		t.Errorf("error body does not name the stale kind: %s", body)
	}
	if got := f.Status().StaleRejected; got != 1 {
		t.Errorf("StaleRejected = %d, want 1", got)
	}

	// Updates are refused outright on a follower — read-only wins over
	// stale, so the error explains the real restriction.
	ur, err := http.PostForm(srv.URL+"/update", url.Values{"update": {"INSERT DATA { <http://a> <http://b> \"c\" }"}, "model": {"m"}})
	if err != nil {
		t.Fatal(err)
	}
	defer ur.Body.Close()
	if ur.StatusCode != http.StatusForbidden {
		t.Fatalf("update on follower = %d, want 403", ur.StatusCode)
	}

	// /stats stays up and reports the degraded state.
	sr, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	var stats struct {
		Repl struct {
			Degraded      bool  `json:"degraded"`
			StaleRejected int64 `json:"staleRejected"`
		} `json:"repl"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if !stats.Repl.Degraded || stats.Repl.StaleRejected != 1 {
		t.Fatalf("stats repl block: %+v", stats.Repl)
	}
}

// TestWalTailEndpoint exercises the leader-side protocol directly:
// no-WAL refusal, bad parameters, a full read with position headers,
// and the 409 divergence answer.
func TestWalTailEndpoint(t *testing.T) {
	// Without a WAL the endpoint refuses with a typed error.
	plain := httptest.NewServer(NewServer(store.New()))
	t.Cleanup(plain.Close)
	resp, err := http.Get(plain.URL + "/wal?from=0&epoch=0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("no-wal status = %d, want 409", resp.StatusCode)
	}

	dir := t.TempDir()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	h := NewServer(st)
	h.AttachWAL(l)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	up, err := http.PostForm(srv.URL+"/update", url.Values{
		"update": {`INSERT DATA { <http://a> <http://p> "1" }`}, "model": {"m"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, up.Body)
	up.Body.Close()
	if up.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d", up.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/wal?from=0&epoch=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tail status = %d", resp.StatusCode)
	}
	if resp.Header.Get(repl.HeaderID) == "" {
		t.Fatal("tail response has no position headers")
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	consumed, last, err := wal.DecodeFrames(data, func(seq uint64, b wal.Batch) error {
		n += len(b.Ops)
		return nil
	})
	if err != nil || consumed != int64(len(data)) || last != 1 || n != 1 {
		t.Fatalf("decode: consumed=%d last=%d ops=%d err=%v", consumed, last, n, err)
	}

	// A position outside the history answers 409 with the leader's
	// current position in the body.
	resp, err = http.Get(srv.URL + "/wal?from=0&epoch=99")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diverged status = %d, want 409", resp.StatusCode)
	}
	var d repl.Diverged
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	if d.Position.ID == "" || d.Kind != "diverged" {
		t.Fatalf("diverged body: %+v", d)
	}

	// Snapshot bootstrap responses carry the position and quad count.
	sr, err := http.Get(srv.URL + "/export?format=snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Body.Close()
	io.Copy(io.Discard, sr.Body)
	if sr.Header.Get(repl.HeaderID) != d.Position.ID {
		t.Fatalf("snapshot position ID %q != leader ID %q", sr.Header.Get(repl.HeaderID), d.Position.ID)
	}
	if sr.Header.Get(repl.HeaderSnapshotQuads) != "1" {
		t.Fatalf("snapshot quads header = %q, want 1", sr.Header.Get(repl.HeaderSnapshotQuads))
	}
}

// TestWalTailLongPoll verifies the wake path: a tail request at the
// end of the log blocks until a commit lands, then returns the new
// record well before the requested wait elapses.
func TestWalTailLongPoll(t *testing.T) {
	dir := t.TempDir()
	st, l, err := wal.Open(dir, wal.Options{Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	h := NewServer(st)
	h.AttachWAL(l)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	type result struct {
		n   int
		err error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/wal?from=0&epoch=0&wait=10s")
		if err != nil {
			resc <- result{0, err}
			return
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		resc <- result{len(data), err}
	}()

	time.Sleep(100 * time.Millisecond) // let the poll park
	up, err := http.PostForm(srv.URL+"/update", url.Values{
		"update": {`INSERT DATA { <http://a> <http://p> "1" }`}, "model": {"m"}})
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, up.Body)
	up.Body.Close()

	select {
	case r := <-resc:
		if r.err != nil || r.n == 0 {
			t.Fatalf("long poll returned n=%d err=%v", r.n, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("long poll did not wake on commit")
	}
}
