package httpapi

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	st := store.New()
	st.CreateIndex("GSPCM")
	v1 := rdf.NewIRI("http://pg/v1")
	v2 := rdf.NewIRI("http://pg/v2")
	follows := rdf.NewIRI(rdf.RelNS + "follows")
	name := rdf.NewIRI(rdf.KeyNS + "name")
	if _, err := st.Load("social", []rdf.Quad{
		rdf.NewQuad(v1, follows, v2, rdf.NewIRI("http://pg/e3")),
		{S: v1, P: name, O: rdf.NewLiteral("Amy")},
		{S: v2, P: name, O: rdf.NewLangLiteral("Mira", "en")},
		{S: v1, P: rdf.NewIRI(rdf.KeyNS + "age"), O: rdf.NewInt(23)},
	}); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(st))
	t.Cleanup(srv.Close)
	return srv
}

func TestSelectViaGET(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(`PREFIX key: <http://pg/k/> SELECT ?x ?n WHERE { ?x key:name ?n }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Errorf("content type = %q", ct)
	}
	res, _, err := ParseResultsJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || len(res.Vars) != 2 {
		t.Fatalf("results: %+v", res)
	}
	// Round-tripped terms keep kinds, datatypes and language tags.
	found := false
	for _, row := range res.Rows {
		if row[1].Equal(rdf.NewLangLiteral("Mira", "en")) {
			found = true
			if !row[0].Equal(rdf.NewIRI("http://pg/v2")) {
				t.Errorf("subject = %v", row[0])
			}
		}
	}
	if !found {
		t.Error("language-tagged literal lost in JSON round trip")
	}
}

func TestSelectViaPOSTForm(t *testing.T) {
	srv := testServer(t)
	resp, err := http.PostForm(srv.URL+"/sparql", url.Values{
		"query": {`PREFIX key: <http://pg/k/> SELECT ?a WHERE { ?x key:age ?a }`},
		"model": {"social"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, _, err := ParseResultsJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || !res.Rows[0][0].Equal(rdf.NewInt(23)) {
		t.Fatalf("typed literal round trip: %+v", res.Rows)
	}
}

func TestSelectViaPOSTRawBody(t *testing.T) {
	srv := testServer(t)
	body := strings.NewReader(`SELECT ?s WHERE { ?s ?p ?o }`)
	resp, err := http.Post(srv.URL+"/sparql", "application/sparql-query", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	res, _, err := ParseResultsJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 4 {
		t.Fatalf("rows = %d", res.Len())
	}
}

func TestAskViaHTTP(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(`PREFIX rel: <http://pg/r/> ASK { ?x rel:follows ?y }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, boolean, err := ParseResultsJSON(resp.Body)
	if err != nil || !boolean {
		t.Fatalf("ask = %v, %v", boolean, err)
	}
}

func TestConstructViaHTTP(t *testing.T) {
	srv := testServer(t)
	q := url.QueryEscape(`PREFIX rel: <http://pg/r/>
		CONSTRUCT { ?y <http://x/followedBy> ?x } WHERE { ?x rel:follows ?y }`)
	resp, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/n-quads" {
		t.Errorf("content type = %q", ct)
	}
	buf := make([]byte, 4096)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "<http://x/followedBy>") {
		t.Errorf("nquads body: %q", buf[:n])
	}
}

func TestUpdateViaHTTP(t *testing.T) {
	srv := testServer(t)
	resp, err := http.PostForm(srv.URL+"/update", url.Values{
		"update": {`INSERT DATA { <http://pg/v3> <http://pg/k/name> "Zed" }`},
		"model":  {"social"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	// Verify the quad is queryable.
	q := url.QueryEscape(`SELECT ?x WHERE { ?x <http://pg/k/name> "Zed" }`)
	resp2, err := http.Get(srv.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	res, _, err := ParseResultsJSON(resp2.Body)
	if err != nil || res.Len() != 1 {
		t.Fatalf("inserted row not visible: %v, %v", res, err)
	}
}

func TestHTTPErrors(t *testing.T) {
	srv := testServer(t)
	cases := []struct {
		name   string
		do     func() (*http.Response, error)
		status int
	}{
		{"missing query", func() (*http.Response, error) {
			return http.Get(srv.URL + "/sparql")
		}, 400},
		{"bad query", func() (*http.Response, error) {
			return http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELEKT ?x"))
		}, 400},
		{"unknown model", func() (*http.Response, error) {
			return http.Get(srv.URL + "/sparql?query=" + url.QueryEscape("SELECT ?x WHERE { ?x ?p ?y }") + "&model=missing")
		}, 404},
		{"update without model", func() (*http.Response, error) {
			return http.PostForm(srv.URL+"/update", url.Values{"update": {`INSERT DATA { <http://a> <http://b> <http://c> }`}})
		}, 400},
		{"update via GET", func() (*http.Response, error) {
			return http.Get(srv.URL + "/update")
		}, 405},
		{"query via DELETE", func() (*http.Response, error) {
			req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/sparql", nil)
			return http.DefaultClient.Do(req)
		}, 405},
	}
	for _, c := range cases {
		resp, err := c.do()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.status {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.status)
		}
	}
}

func TestReadOnlyServer(t *testing.T) {
	st := store.New()
	h := NewServer(st)
	h.ReadOnly = true
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.PostForm(srv.URL+"/update", url.Values{
		"update": {`INSERT DATA { <http://a> <http://b> <http://c> }`},
		"model":  {"m"},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("read-only update status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 1024)
	n, _ := resp.Body.Read(buf)
	body := string(buf[:n])
	if !strings.Contains(body, `"quads":4`) {
		t.Errorf("stats body: %s", body)
	}
	resp2, _ := http.Get(srv.URL + "/stats?model=missing")
	resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Errorf("missing model stats status = %d", resp2.StatusCode)
	}
}

func TestJSONUnboundVariables(t *testing.T) {
	st := store.New()
	st.Load("m", []rdf.Quad{{S: rdf.NewIRI("http://a"), P: rdf.NewIRI("http://p"), O: rdf.NewIRI("http://b")}})
	res, err := sparql.NewEngine(st).Query("", `SELECT ?s ?missing WHERE { ?s <http://p> ?o OPTIONAL { ?s <http://q> ?missing } }`)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteResultsJSON(&sb, res); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "missing\":") {
		t.Errorf("unbound var should be absent from bindings: %s", sb.String())
	}
	back, _, err := ParseResultsJSON(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Rows[0][1].IsZero() {
		t.Error("unbound survived round trip as bound")
	}
}
