package graph

import (
	"context"
	"fmt"
	"math"
	"testing"

	"repro/internal/pgrdf"
)

// naivePageRank is the straightforward serial reference: same math as
// Runner.PageRank, no morsels, no double buffering tricks.
func naivePageRank(cs *CSR, opts PageRankOptions) []float64 {
	opts = opts.withDefaults()
	n := cs.NumVertices()
	outW := make([]float64, n)
	for v := 0; v < n; v++ {
		if opts.Weighted {
			for _, w := range cs.NeighborWeights(uint32(v)) {
				outW[v] += w
			}
		} else {
			outW[v] = float64(cs.OutDegree(uint32(v)))
		}
	}
	inv := 1.0 / float64(n)
	cur := make([]float64, n)
	for v := range cur {
		cur[v] = inv
	}
	for it := 0; it < opts.MaxIterations; it++ {
		dangling := 0.0
		for v := 0; v < n; v++ {
			if outW[v] == 0 {
				dangling += cur[v]
			}
		}
		next := make([]float64, n)
		base := (1-opts.Damping)*inv + opts.Damping*dangling*inv
		for v := range next {
			next[v] = base
		}
		for u := 0; u < n; u++ {
			if outW[u] == 0 {
				continue
			}
			c := cur[u] / outW[u]
			nb := cs.Neighbors(uint32(u))
			ws := cs.NeighborWeights(uint32(u))
			for i, v := range nb {
				if opts.Weighted {
					next[v] += opts.Damping * c * ws[i]
				} else {
					next[v] += opts.Damping * c
				}
			}
		}
		delta := 0.0
		for v := range next {
			delta += math.Abs(next[v] - cur[v])
		}
		cur = next
		if delta <= opts.Tolerance {
			break
		}
	}
	return cur
}

// naiveComponents returns the partition of vertices into weak
// components via union-find.
func naiveComponents(cs *CSR) []uint32 {
	n := cs.NumVertices()
	parent := make([]uint32, n)
	for v := range parent {
		parent[v] = uint32(v)
	}
	var find func(uint32) uint32
	find = func(v uint32) uint32 {
		if parent[v] != v {
			parent[v] = find(parent[v])
		}
		return parent[v]
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}
	for v := 0; v < n; v++ {
		for _, u := range cs.Neighbors(uint32(v)) {
			union(uint32(v), u)
		}
	}
	labels := make([]uint32, n)
	for v := range labels {
		labels[v] = find(uint32(v))
	}
	// Canonicalize to the minimum index per component (union by min
	// above already guarantees it, since the root only ever decreases).
	return labels
}

// naiveTriangles brute-forces the undirected triangle count with
// neighbor sets.
func naiveTriangles(cs *CSR) int64 {
	n := cs.NumVertices()
	und := make([]map[uint32]bool, n)
	for v := 0; v < n; v++ {
		und[v] = make(map[uint32]bool)
	}
	for v := 0; v < n; v++ {
		for _, u := range cs.Neighbors(uint32(v)) {
			if u != uint32(v) {
				und[v][u] = true
				und[u][uint32(v)] = true
			}
		}
	}
	count := int64(0)
	for u := 0; u < n; u++ {
		for v := range und[u] {
			if int(v) <= u {
				continue
			}
			for w := range und[u] {
				if w > v && und[v][w] {
					count++
				}
			}
		}
	}
	return count
}

func testCSR(t *testing.T, seed int64, nv, ne int, weightKey string) *CSR {
	t.Helper()
	g := randomGraph(t, seed, nv, ne)
	st, names := loadScheme(t, g, pgrdf.NG)
	return mustProject(t, st, ProjectOptions{
		Model: names.All, Scheme: pgrdf.NG, WeightKey: weightKey, Reverse: true,
	})
}

func TestPageRankDifferential(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		key := ""
		if weighted {
			key = "weight"
		}
		for seed := int64(10); seed < 14; seed++ {
			cs := testCSR(t, seed, 150, 600, key)
			res, err := Runner{Parallelism: 4}.PageRank(context.Background(), cs, PageRankOptions{Weighted: weighted})
			if err != nil {
				t.Fatal(err)
			}
			want := naivePageRank(cs, PageRankOptions{Weighted: weighted})
			if len(res.Scores) != len(want) {
				t.Fatalf("len = %d, want %d", len(res.Scores), len(want))
			}
			sum := 0.0
			for v := range want {
				if math.Abs(res.Scores[v]-want[v]) > 1e-9 {
					t.Fatalf("seed %d weighted=%v: score[%d] = %g, want %g", seed, weighted, v, res.Scores[v], want[v])
				}
				sum += res.Scores[v]
			}
			if math.Abs(sum-1) > 1e-6 {
				t.Fatalf("seed %d: rank mass = %g, want ~1", seed, sum)
			}
			if !res.Converged && res.Iterations != 50 {
				t.Fatalf("seed %d: not converged after %d iterations", seed, res.Iterations)
			}
		}
	}
}

func TestWCCDifferential(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		// Sparse: many components.
		cs := testCSR(t, seed, 300, 150, "")
		res, err := Runner{Parallelism: 4}.WCC(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		want := naiveComponents(cs)
		comps := 0
		for v, lbl := range want {
			if res.Labels[v] != lbl {
				t.Fatalf("seed %d: label[%d] = %d, want %d", seed, v, res.Labels[v], lbl)
			}
			if lbl == uint32(v) {
				comps++
			}
		}
		if res.Components != comps {
			t.Fatalf("seed %d: components = %d, want %d", seed, res.Components, comps)
		}
	}
}

func TestTrianglesDifferential(t *testing.T) {
	for seed := int64(30); seed < 34; seed++ {
		cs := testCSR(t, seed, 120, 700, "")
		res, err := Runner{Parallelism: 4}.Triangles(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		if want := naiveTriangles(cs); res.Count != want {
			t.Fatalf("seed %d: triangles = %d, want %d", seed, res.Count, want)
		}
	}
}

func TestFigure1Algorithms(t *testing.T) {
	g := figure1(t)
	for _, s := range pgrdf.Schemes {
		st, names := loadScheme(t, g, s)
		cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Reverse: true})
		pr, err := Runner{}.PageRank(context.Background(), cs, PageRankOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if pr.Scores[1] <= pr.Scores[0] {
			t.Fatalf("%s: v2 should outrank v1: %v", s, pr.Scores)
		}
		wcc, err := Runner{}.WCC(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		if wcc.Components != 1 {
			t.Fatalf("%s: components = %d", s, wcc.Components)
		}
		tr, err := Runner{}.Triangles(context.Background(), cs)
		if err != nil {
			t.Fatal(err)
		}
		if tr.Count != 0 {
			t.Fatalf("%s: triangles = %d", s, tr.Count)
		}
	}
}

// TestParallelismByteIdentical pins the determinism contract: results
// at Parallelism 1, 4 and 8 are bit-identical, across all three
// schemes — floating-point included.
func TestParallelismByteIdentical(t *testing.T) {
	// Big enough for several morsels (morselVertices = 1024).
	g := randomGraph(t, 42, 5000, 20000)
	type fingerprint struct {
		scores []uint64
		labels []uint32
		tris   int64
	}
	var ref *fingerprint
	for _, s := range pgrdf.Schemes {
		st, names := loadScheme(t, g, s)
		cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Reverse: true})
		for _, par := range []int{1, 4, 8} {
			r := Runner{Parallelism: par}
			pr, err := r.PageRank(context.Background(), cs, PageRankOptions{})
			if err != nil {
				t.Fatal(err)
			}
			wcc, err := r.WCC(context.Background(), cs)
			if err != nil {
				t.Fatal(err)
			}
			tr, err := r.Triangles(context.Background(), cs)
			if err != nil {
				t.Fatal(err)
			}
			fp := &fingerprint{labels: wcc.Labels, tris: tr.Count}
			for _, sc := range pr.Scores {
				fp.scores = append(fp.scores, math.Float64bits(sc))
			}
			if ref == nil {
				ref = fp
				continue
			}
			label := fmt.Sprintf("scheme %s par %d", s, par)
			if len(fp.scores) != len(ref.scores) || len(fp.labels) != len(ref.labels) {
				t.Fatalf("%s: size mismatch", label)
			}
			for i := range ref.scores {
				if fp.scores[i] != ref.scores[i] {
					t.Fatalf("%s: score bits differ at vertex %d", label, i)
				}
			}
			for i := range ref.labels {
				if fp.labels[i] != ref.labels[i] {
					t.Fatalf("%s: wcc label differs at vertex %d", label, i)
				}
			}
			if fp.tris != ref.tris {
				t.Fatalf("%s: triangles %d != %d", label, fp.tris, ref.tris)
			}
		}
	}
}

func TestPageRankRequiresReverse(t *testing.T) {
	g := figure1(t)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG})
	if _, err := (Runner{}).PageRank(context.Background(), cs, PageRankOptions{}); err == nil {
		t.Fatal("expected error for CSR without reverse adjacency")
	}
}
