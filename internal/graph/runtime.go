package graph

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// morselVertices is the fixed vertex-range size of one morsel. It is a
// constant — never derived from the worker count — so the morsel
// decomposition, and with it the order of every per-morsel
// floating-point fold, is a function of the graph alone. That is the
// load-bearing half of the determinism contract: results are
// byte-identical at Parallelism 1, 4 and 8 because the same morsels
// produce the same partials and the folds always run in morsel order.
const morselVertices = 1024

// numMorsels returns the number of fixed-size morsels covering n
// vertices.
func numMorsels(n int) int {
	return (n + morselVertices - 1) / morselVertices
}

// Runner executes graph algorithms over a CSR.
type Runner struct {
	// Parallelism is the worker count; <= 0 means GOMAXPROCS. Results
	// are identical at every setting.
	Parallelism int
	// Budget bounds each run; see Budget.
	Budget Budget
}

func (r Runner) workers() int {
	w := r.Parallelism
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return w
}

// runMorsels executes fn over every fixed-size vertex morsel of [0, n)
// using w workers. Workers claim morsels from a shared atomic counter
// (the same work-stealing shape as the SPARQL morsel executor), so the
// assignment of morsels to workers is racy — which is why fn must
// write only per-vertex state inside its own range plus per-morsel
// partial slots, never accumulate across morsels.
//
// fn reports false to abort (guard violation); the remaining morsels
// are skipped. runMorsels reports whether every morsel completed. At
// w == 1 the claim counter degenerates to a serial loop over the same
// decomposition.
func runMorsels(w, n int, g *guard, fn func(m, lo, hi int) bool) bool {
	nm := numMorsels(n)
	if nm == 0 {
		return true
	}
	if w > nm {
		w = nm
	}
	runOne := func(m int) bool {
		if !g.poll() {
			return false
		}
		lo := m * morselVertices
		hi := lo + morselVertices
		if hi > n {
			hi = n
		}
		return fn(m, lo, hi)
	}
	if w <= 1 {
		for m := 0; m < nm; m++ {
			if !runOne(m) {
				return false
			}
		}
		return true
	}

	var next atomic.Int64
	var stopped atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for !stopped.Load() {
				m := int(next.Add(1)) - 1
				if m >= nm {
					return
				}
				if !runOne(m) {
					stopped.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return !stopped.Load()
}

// foldFloat sums per-morsel float partials in morsel order — the
// deterministic reduction used after every parallel phase.
func foldFloat(partials []float64) float64 {
	s := 0.0
	for _, p := range partials {
		s += p
	}
	return s
}

// foldInt sums per-morsel integer partials.
func foldInt(partials []int64) int64 {
	s := int64(0)
	for _, p := range partials {
		s += p
	}
	return s
}

// foldBool ORs per-morsel changed flags.
func foldBool(partials []bool) bool {
	for _, p := range partials {
		if p {
			return true
		}
	}
	return false
}
