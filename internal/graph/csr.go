// Package graph is the analytics tier beside the SPARQL endpoint: it
// projects a plain directed graph out of the ID-quad indexes — decoding
// edges under all three PG-as-RDF schemes (RF, NG, SP) — into a compact
// CSR, and runs PageRank, weakly-connected components and triangle
// counting over it on a morsel-parallel runtime with budget/cancellation
// guards. This reproduces the "analytics-only" deployment shape of the
// Oracle PGX material: the same store serves SPARQL queries and whole-
// graph algorithms SPARQL cannot express.
//
// Determinism contract: for a given store snapshot, projection and every
// algorithm produce byte-identical results at any Parallelism and under
// any of the three schemes. See DESIGN.md §17 for the argument.
package graph

import (
	"sort"

	"repro/internal/rdf"
)

// CSR is a compressed-sparse-row projection of an edge relation: a
// simple directed graph (parallel edges collapsed, one row per source
// vertex, each row sorted by destination) with an optional reverse
// adjacency and optional per-edge weights.
//
// Vertices are densely renumbered in the canonical order of their RDF
// terms (rdf.Compare), which is a property of the projected graph alone
// — not of dictionary insertion order — so the same property graph
// loaded under RF, NG and SP projects to bit-identical CSRs.
//
// A CSR is immutable after Build: algorithm workers read it without
// synchronization.
type CSR struct {
	terms []rdf.Term // vertex -> RDF term, canonical order
	off   []uint32   // forward row offsets, len NumVertices()+1
	dst   []uint32   // forward adjacency, sorted per row
	w     []float64  // per-edge weights parallel to dst; nil = unweighted
	roff  []uint32   // reverse row offsets; nil unless built with reverse
	rsrc  []uint32   // reverse adjacency, sorted per row
	rw    []float64  // weights parallel to rsrc
}

// NumVertices returns the number of projected vertices.
func (c *CSR) NumVertices() int { return len(c.terms) }

// NumEdges returns the number of distinct (src, dst) edges.
func (c *CSR) NumEdges() int { return len(c.dst) }

// Weighted reports whether the projection carries edge weights.
func (c *CSR) Weighted() bool { return c.w != nil }

// HasReverse reports whether the reverse adjacency was built.
func (c *CSR) HasReverse() bool { return c.roff != nil }

// Term returns the RDF term of vertex v.
func (c *CSR) Term(v uint32) rdf.Term { return c.terms[v] }

// Neighbors returns the out-neighbors of v, sorted by vertex index.
// The returned slice aliases the CSR and must not be modified.
func (c *CSR) Neighbors(v uint32) []uint32 { return c.dst[c.off[v]:c.off[v+1]] }

// NeighborWeights returns the weights parallel to Neighbors(v), or nil
// when the projection is unweighted.
func (c *CSR) NeighborWeights(v uint32) []float64 {
	if c.w == nil {
		return nil
	}
	return c.w[c.off[v]:c.off[v+1]]
}

// InNeighbors returns the in-neighbors of v, sorted by vertex index.
// It panics unless the CSR was built with a reverse adjacency.
func (c *CSR) InNeighbors(v uint32) []uint32 { return c.rsrc[c.roff[v]:c.roff[v+1]] }

// InNeighborWeights returns the weights parallel to InNeighbors(v), or
// nil when the projection is unweighted.
func (c *CSR) InNeighborWeights(v uint32) []float64 {
	if c.rw == nil {
		return nil
	}
	return c.rw[c.roff[v]:c.roff[v+1]]
}

// OutDegree returns the out-degree of v.
func (c *CSR) OutDegree(v uint32) int { return int(c.off[v+1] - c.off[v]) }

// InDegree returns the in-degree of v.
func (c *CSR) InDegree(v uint32) int { return int(c.roff[v+1] - c.roff[v]) }

// rawEdge is one decoded edge occurrence before deduplication, in
// vertex-index space. identified marks occurrences decoded from an
// edge resource (reified statement, named graph, or subproperty
// anchor); plain s-p-o triples are unidentified and carry no weight.
type rawEdge struct {
	src, dst   uint32
	w          float64
	identified bool
}

// buildCSR assembles the immutable CSR from decoded edge occurrences.
// terms must already be in canonical order; edges refer to indexes in
// it. Duplicate (src, dst) occurrences collapse to one edge. When
// weighted, the collapsed weight is the sum over identified occurrences
// (each defaulting to 1 when it carried no weight value); pairs seen
// only as plain triples weigh 1. Summation happens in sorted
// (src, dst, weight) order, so the result is independent of decode
// order and therefore of scheme and parallelism.
func buildCSR(terms []rdf.Term, edges []rawEdge, weighted, reverse bool) *CSR {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		if a.w != b.w {
			return a.w < b.w
		}
		return !a.identified && b.identified
	})

	n := len(terms)
	c := &CSR{terms: terms, off: make([]uint32, n+1)}
	if weighted {
		c.w = make([]float64, 0, len(edges))
	}
	c.dst = make([]uint32, 0, len(edges))
	for i := 0; i < len(edges); {
		j := i
		idSum, idSeen := 0.0, false
		for ; j < len(edges) && edges[j].src == edges[i].src && edges[j].dst == edges[i].dst; j++ {
			if edges[j].identified {
				idSeen = true
				idSum += edges[j].w
			}
		}
		c.dst = append(c.dst, edges[i].dst)
		c.off[edges[i].src+1]++
		if weighted {
			ew := 1.0
			if idSeen {
				ew = idSum
			}
			c.w = append(c.w, ew)
		}
		i = j
	}
	for v := 0; v < n; v++ {
		c.off[v+1] += c.off[v]
	}

	if reverse {
		c.buildReverse()
	}
	return c
}

// buildReverse constructs the in-adjacency by counting sort over the
// forward rows, preserving sorted order within each reverse row.
func (c *CSR) buildReverse() {
	n := len(c.terms)
	c.roff = make([]uint32, n+1)
	for _, d := range c.dst {
		c.roff[d+1]++
	}
	for v := 0; v < n; v++ {
		c.roff[v+1] += c.roff[v]
	}
	c.rsrc = make([]uint32, len(c.dst))
	if c.w != nil {
		c.rw = make([]float64, len(c.dst))
	}
	next := make([]uint32, n)
	copy(next, c.roff[:n])
	// Iterating sources in ascending order keeps every reverse row
	// sorted by source index, which fixes the floating-point gather
	// order in pull-based PageRank.
	for s := uint32(0); s < uint32(n); s++ {
		for i := c.off[s]; i < c.off[s+1]; i++ {
			d := c.dst[i]
			c.rsrc[next[d]] = s
			if c.rw != nil {
				c.rw[next[d]] = c.w[i]
			}
			next[d]++
		}
	}
}

// sortTermsCanonical sorts vertex terms into the canonical projection
// order (rdf.Compare) and returns the permuted slice.
func sortTermsCanonical(terms []rdf.Term) []rdf.Term {
	sort.Slice(terms, func(i, j int) bool { return rdf.Compare(terms[i], terms[j]) < 0 })
	return terms
}
