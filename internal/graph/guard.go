package graph

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Error kinds distinguishing why an algorithm run was aborted. Test with
// errors.Is against the error returned by Project or the Runner.
var (
	// ErrTimeout: the context deadline (or Budget.Timeout) expired.
	ErrTimeout = errors.New("algorithm deadline exceeded")
	// ErrBudgetExceeded: the run touched more vertices/edges than its
	// budget allows.
	ErrBudgetExceeded = errors.New("algorithm work budget exceeded")
	// ErrCanceled: the context was canceled by the caller.
	ErrCanceled = errors.New("algorithm canceled")
	// ErrInternal: the runtime recovered from an internal panic.
	ErrInternal = errors.New("internal algorithm error")
)

// AlgoError is the structured error returned when a projection or an
// algorithm run is stopped by a guardrail or an internal failure. Kind
// is one of the sentinel errors above, exposed through errors.Is/Unwrap.
type AlgoError struct {
	Kind error
	Msg  string
	// Stack holds the recovered goroutine stack when Kind is
	// ErrInternal; empty otherwise.
	Stack string
}

func (e *AlgoError) Error() string {
	if e.Msg == "" {
		return "graph: " + e.Kind.Error()
	}
	return "graph: " + e.Msg
}

func (e *AlgoError) Unwrap() error { return e.Kind }

// Budget bounds the resources one projection or algorithm run may
// consume. The zero value imposes no limits.
type Budget struct {
	// Timeout is the wall-clock deadline applied when the caller's
	// context does not already carry an earlier one. 0 = none.
	Timeout time.Duration
	// MaxWork caps the number of work units — quads drained during
	// projection plus vertices and edges touched per iteration — the
	// run may consume. 0 = unlimited.
	MaxWork int64
}

// guardPollInterval is how many guard events pass between checks of the
// context's done channel, keeping hot loops at one atomic add per
// batch in the common case.
const guardPollInterval = 256

// guard enforces a Budget cooperatively. Projection ticks it once per
// drained quad; algorithm workers tick it per batch of edges scanned
// and poll it between morsels. The first violation latches into err and
// every later tick/poll fails fast, so all workers unwind promptly. A
// nil *guard is inert.
//
// All counters are atomic: one guard is shared by every worker of a
// parallel run, so workers tick and poll concurrently without extra
// locking. At Parallelism=1 the counters see exactly the serial
// sequence of events, so budget semantics are parallelism-independent.
type guard struct {
	ctx     context.Context
	maxWork int64
	work    atomic.Int64
	events  atomic.Uint64
	err     atomic.Pointer[AlgoError]
}

// newGuard returns nil (no overhead) when the context can never fire
// and the budget imposes no limit.
func newGuard(ctx context.Context, b Budget) *guard {
	if ctx.Done() == nil && b.MaxWork <= 0 {
		return nil
	}
	return &guard{ctx: ctx, maxWork: b.MaxWork}
}

// fail latches the first violation; later racers lose the CAS and are
// dropped, preserving the serial "first error wins" behavior.
func (g *guard) fail(ae *AlgoError) {
	g.err.CompareAndSwap(nil, ae)
}

// tickN records n work units at once — the batch form used by workers
// so per-row accounting does not serialize them on the shared counter.
// The context is still polled at every guardPollInterval boundary the
// batch crosses. It reports false when the run must stop.
func (g *guard) tickN(n int) bool {
	if g == nil {
		return true
	}
	if g.err.Load() != nil {
		return false
	}
	if n <= 0 {
		return true
	}
	total := g.work.Add(int64(n))
	if g.maxWork > 0 && total > g.maxWork {
		g.fail(&AlgoError{Kind: ErrBudgetExceeded,
			Msg: fmt.Sprintf("run exceeded the budget of %d work units", g.maxWork)})
		return false
	}
	return g.pollEvery(n)
}

// poll checks the context every guardPollInterval guard events. It
// reports false when the run must stop.
func (g *guard) poll() bool {
	if g == nil {
		return true
	}
	if g.err.Load() != nil {
		return false
	}
	return g.pollEvery(1)
}

// pollEvery advances the event counter by n and checks the context's
// done channel when the counter crosses a guardPollInterval boundary.
func (g *guard) pollEvery(n int) bool {
	now := g.events.Add(uint64(n))
	if now/guardPollInterval == (now-uint64(n))/guardPollInterval {
		return true
	}
	select {
	case <-g.ctx.Done():
		g.fail(ctxAlgoError(g.ctx.Err()))
		return false
	default:
		return true
	}
}

// Err returns the latched violation, if any.
func (g *guard) Err() error {
	if g == nil {
		return nil
	}
	if ae := g.err.Load(); ae != nil {
		return ae
	}
	return nil
}

func ctxAlgoError(err error) *AlgoError {
	if errors.Is(err, context.DeadlineExceeded) {
		return &AlgoError{Kind: ErrTimeout}
	}
	return &AlgoError{Kind: ErrCanceled}
}

// startRun applies the Budget's timeout to ctx (unless the caller's
// deadline is already earlier), pre-flights an already-dead context so
// canceled calls fail deterministically before any work, and returns
// the run's guard (which carries the derived context). cancel is never
// nil on success.
func startRun(ctx context.Context, b Budget) (context.CancelFunc, *guard, error) {
	cancel := context.CancelFunc(func() {})
	if b.Timeout > 0 {
		if dl, ok := ctx.Deadline(); !ok || time.Until(dl) > b.Timeout {
			ctx, cancel = context.WithTimeout(ctx, b.Timeout)
		}
	}
	if err := ctx.Err(); err != nil {
		cancel()
		return nil, nil, ctxAlgoError(err)
	}
	return cancel, newGuard(ctx, b), nil
}

// recoverAlgoPanic converts a runtime panic into a structured
// *AlgoError with kind ErrInternal, preserving the stack for
// diagnostics. Deferred by every exported entry point so a corrupt
// projection or injected fault degrades into an error, not a crash.
func recoverAlgoPanic(err *error) {
	if r := recover(); r != nil {
		*err = &AlgoError{
			Kind:  ErrInternal,
			Msg:   fmt.Sprintf("internal error: %v", r),
			Stack: string(debug.Stack()),
		}
	}
}

// finish resolves the final error of a run: an explicit error wins,
// then a latched guard violation.
func finish(g *guard, err error) error {
	if err != nil {
		return err
	}
	return g.Err()
}
