package graph

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pgrdf"
)

func TestProjectCanceledContext(t *testing.T) {
	g := randomGraph(t, 50, 100, 300)
	st, names := loadScheme(t, g, pgrdf.NG)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Project(ctx, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG}, Budget{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if n := st.OpenCursors(); n != 0 {
		t.Fatalf("leaked %d cursors", n)
	}
}

func TestProjectExpiredDeadline(t *testing.T) {
	g := randomGraph(t, 51, 100, 300)
	st, names := loadScheme(t, g, pgrdf.NG)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := Project(ctx, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG}, Budget{})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestProjectBudgetExceeded(t *testing.T) {
	g := randomGraph(t, 52, 400, 2000)
	st, names := loadScheme(t, g, pgrdf.NG)
	_, err := Project(context.Background(), st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG}, Budget{MaxWork: 100})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if n := st.OpenCursors(); n != 0 {
		t.Fatalf("leaked %d cursors on abort", n)
	}
}

// TestAlgorithmsBudgetMidIteration sizes MaxWork so the budget trips
// after the run is already iterating — every algorithm must surface
// ErrBudgetExceeded from inside a morsel phase, at any parallelism,
// deterministically.
func TestAlgorithmsBudgetMidIteration(t *testing.T) {
	g := randomGraph(t, 53, 3000, 12000)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG, Reverse: true})
	// One PageRank iteration costs > n work units; this allows roughly
	// one and a half phases.
	budget := Budget{MaxWork: int64(cs.NumVertices()) * 3 / 2}
	for _, par := range []int{1, 4} {
		r := Runner{Parallelism: par, Budget: budget}
		if _, err := r.PageRank(context.Background(), cs, PageRankOptions{}); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("par %d: PageRank err = %v, want ErrBudgetExceeded", par, err)
		}
		if _, err := r.WCC(context.Background(), cs); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("par %d: WCC err = %v, want ErrBudgetExceeded", par, err)
		}
		if _, err := r.Triangles(context.Background(), cs); !errors.Is(err, ErrBudgetExceeded) {
			t.Fatalf("par %d: Triangles err = %v, want ErrBudgetExceeded", par, err)
		}
	}
}

func TestAlgorithmsCanceledContext(t *testing.T) {
	g := randomGraph(t, 54, 500, 2000)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG, Reverse: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := Runner{Parallelism: 4}
	if _, err := r.PageRank(ctx, cs, PageRankOptions{}); !errors.Is(err, ErrCanceled) {
		t.Fatalf("PageRank err = %v, want ErrCanceled", err)
	}
	if _, err := r.WCC(ctx, cs); !errors.Is(err, ErrCanceled) {
		t.Fatalf("WCC err = %v, want ErrCanceled", err)
	}
	if _, err := r.Triangles(ctx, cs); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Triangles err = %v, want ErrCanceled", err)
	}
}

// TestAlgorithmsCancellationMidIteration cancels the context from a
// goroutine the first morsel unblocks, proving workers observe
// cancellation between morsels rather than running to completion.
func TestAlgorithmsCancellationMidIteration(t *testing.T) {
	g := randomGraph(t, 55, 4000, 16000)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG, Reverse: true})
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	r := Runner{Parallelism: 4}
	// With MaxIterations far beyond convergence and no tolerance exit,
	// only cancellation can end the run early.
	_, err := r.PageRank(ctx, cs, PageRankOptions{MaxIterations: 1_000_000, Tolerance: -1})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunnerTimeoutBudget(t *testing.T) {
	g := randomGraph(t, 56, 3000, 12000)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG, Reverse: true})
	r := Runner{Parallelism: 2, Budget: Budget{Timeout: time.Microsecond}}
	_, err := r.PageRank(context.Background(), cs, PageRankOptions{MaxIterations: 1_000_000, Tolerance: -1})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}
