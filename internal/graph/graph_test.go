package graph

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/store"
)

// figure1 rebuilds the paper's Figure 1 sample graph.
func figure1(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	v1, err := g.AddVertexWithID(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g.AddVertexWithID(2)
	if err != nil {
		t.Fatal(err)
	}
	v1.SetProperty("name", pg.S("Amy"))
	v1.SetProperty("age", pg.I(23))
	v2.SetProperty("name", pg.S("Mira"))
	v2.SetProperty("age", pg.I(22))
	e3, err := g.AddEdgeWithID(3, 1, 2, "follows")
	if err != nil {
		t.Fatal(err)
	}
	e3.SetProperty("since", pg.I(2007))
	e4, err := g.AddEdgeWithID(4, 1, 2, "knows")
	if err != nil {
		t.Fatal(err)
	}
	e4.SetProperty("firstMetAt", pg.S("MIT"))
	return g
}

// randomGraph builds a seeded random property graph: nv vertices, ne
// random edges over two labels with a float "weight" on half of them,
// plus a few isolated vertices.
func randomGraph(t *testing.T, seed int64, nv, ne int) *pg.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := pg.NewGraph()
	for i := 1; i <= nv; i++ {
		if _, err := g.AddVertexWithID(pg.ID(i)); err != nil {
			t.Fatal(err)
		}
	}
	labels := []string{"follows", "knows"}
	for i := 0; i < ne; i++ {
		src := pg.ID(rng.Intn(nv) + 1)
		dst := pg.ID(rng.Intn(nv) + 1)
		e, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(2) == 0 {
			e.SetProperty("weight", pg.F(float64(rng.Intn(9)+1)))
		}
	}
	return g
}

// loadScheme converts g under scheme s and loads it partitioned into a
// fresh store with the recommended indexes.
func loadScheme(t *testing.T, g *pg.Graph, s pgrdf.Scheme) (*store.Store, pgrdf.ModelNames) {
	t.Helper()
	st, err := pgrdf.NewStore(s)
	if err != nil {
		t.Fatal(err)
	}
	conv := pgrdf.NewConverter(s)
	names, err := pgrdf.LoadPartitioned(st, conv.Convert(g), "pg")
	if err != nil {
		t.Fatal(err)
	}
	return st, names
}

func mustProject(t *testing.T, st *store.Store, opts ProjectOptions) *CSR {
	t.Helper()
	cs, err := Project(context.Background(), st, opts, Budget{})
	if err != nil {
		t.Fatalf("Project(%+v): %v", opts, err)
	}
	return cs
}

// csrEqual asserts two CSRs are bit-identical.
func csrEqual(t *testing.T, want, got *CSR, label string) {
	t.Helper()
	if len(want.terms) != len(got.terms) {
		t.Fatalf("%s: vertices %d != %d", label, len(got.terms), len(want.terms))
	}
	for i := range want.terms {
		if !want.terms[i].Equal(got.terms[i]) {
			t.Fatalf("%s: term[%d] %v != %v", label, i, got.terms[i], want.terms[i])
		}
	}
	eqU32 := func(name string, a, b []uint32) {
		if len(a) != len(b) {
			t.Fatalf("%s: %s length %d != %d", label, name, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: %s[%d] %d != %d", label, name, i, b[i], a[i])
			}
		}
	}
	eqU32("off", want.off, got.off)
	eqU32("dst", want.dst, got.dst)
	eqU32("roff", want.roff, got.roff)
	eqU32("rsrc", want.rsrc, got.rsrc)
	if len(want.w) != len(got.w) {
		t.Fatalf("%s: weights length %d != %d", label, len(got.w), len(want.w))
	}
	for i := range want.w {
		if math.Float64bits(want.w[i]) != math.Float64bits(got.w[i]) {
			t.Fatalf("%s: w[%d] %v != %v", label, i, got.w[i], want.w[i])
		}
	}
}

func TestProjectFigure1(t *testing.T) {
	g := figure1(t)
	for _, s := range pgrdf.Schemes {
		t.Run(s.String(), func(t *testing.T) {
			st, names := loadScheme(t, g, s)
			cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Reverse: true})
			if cs.NumVertices() != 2 {
				t.Fatalf("vertices = %d, want 2", cs.NumVertices())
			}
			// follows and knows connect the same pair: one projected edge.
			if cs.NumEdges() != 1 {
				t.Fatalf("edges = %d, want 1", cs.NumEdges())
			}
			if cs.Term(0).Value != "http://pg/v1" || cs.Term(1).Value != "http://pg/v2" {
				t.Fatalf("terms = %v %v", cs.Term(0), cs.Term(1))
			}
			if nb := cs.Neighbors(0); len(nb) != 1 || nb[0] != 1 {
				t.Fatalf("Neighbors(0) = %v", nb)
			}
			if in := cs.InNeighbors(1); len(in) != 1 || in[0] != 0 {
				t.Fatalf("InNeighbors(1) = %v", in)
			}

			one := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Label: "follows"})
			if one.NumEdges() != 1 || one.NumVertices() != 2 {
				t.Fatalf("follows projection: V=%d E=%d", one.NumVertices(), one.NumEdges())
			}
			none := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Label: "blocks"})
			if none.NumEdges() != 0 || none.NumVertices() != 0 {
				t.Fatalf("blocks projection: V=%d E=%d", none.NumVertices(), none.NumEdges())
			}
			if n := st.OpenCursors(); n != 0 {
				t.Fatalf("leaked %d cursors", n)
			}
		})
	}
}

func TestProjectIsolatedAndOptionVariants(t *testing.T) {
	g := figure1(t)
	if _, err := g.AddVertexWithID(9); err != nil { // isolated, no KVs
		t.Fatal(err)
	}
	for _, s := range pgrdf.Schemes {
		for _, opts := range []pgrdf.Options{
			{ExplicitSPO: true},
			{ExplicitSPO: false},
			{ExplicitSPO: true, SingleTripleWhenNoKVs: true},
		} {
			name := fmt.Sprintf("%s/spo=%v/single=%v", s, opts.ExplicitSPO, opts.SingleTripleWhenNoKVs)
			t.Run(name, func(t *testing.T) {
				st, err := pgrdf.NewStore(s)
				if err != nil {
					t.Fatal(err)
				}
				conv := pgrdf.NewConverter(s)
				conv.Opts = opts
				names, err := pgrdf.LoadPartitioned(st, conv.Convert(g), "pg")
				if err != nil {
					t.Fatal(err)
				}
				cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: s, Reverse: true})
				if cs.NumVertices() != 3 {
					t.Fatalf("vertices = %d, want 3 (v9 isolated)", cs.NumVertices())
				}
				if cs.NumEdges() != 1 {
					t.Fatalf("edges = %d, want 1", cs.NumEdges())
				}
				if cs.Term(2).Value != "http://pg/v9" {
					t.Fatalf("term[2] = %v", cs.Term(2))
				}
				if cs.OutDegree(2) != 0 || cs.InDegree(2) != 0 {
					t.Fatalf("v9 degrees = %d/%d", cs.OutDegree(2), cs.InDegree(2))
				}
			})
		}
	}
}

// TestProjectCrossSchemeIdentity is the heart of the determinism
// contract: the same property graph loaded under RF, NG and SP must
// project to bit-identical CSRs.
func TestProjectCrossSchemeIdentity(t *testing.T) {
	for _, cfg := range []struct {
		seed   int64
		nv, ne int
		label  string
		weight string
	}{
		{seed: 1, nv: 40, ne: 120},
		{seed: 2, nv: 200, ne: 900},
		{seed: 3, nv: 200, ne: 900, label: "follows"},
		{seed: 4, nv: 120, ne: 500, weight: "weight"},
	} {
		g := randomGraph(t, cfg.seed, cfg.nv, cfg.ne)
		var ref *CSR
		for _, s := range pgrdf.Schemes {
			st, names := loadScheme(t, g, s)
			cs := mustProject(t, st, ProjectOptions{
				Model: names.All, Scheme: s, Label: cfg.label,
				WeightKey: cfg.weight, Reverse: true,
			})
			if ref == nil {
				ref = cs
				continue
			}
			csrEqual(t, ref, cs, fmt.Sprintf("seed %d scheme %s", cfg.seed, s))
		}
	}
}

func TestDetectScheme(t *testing.T) {
	g := randomGraph(t, 7, 30, 80)
	for _, s := range pgrdf.Schemes {
		st, names := loadScheme(t, g, s)
		got, err := DetectScheme(st, names.All, pgrdf.Vocabulary{})
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("DetectScheme = %v, want %v", got, s)
		}
	}
}

func TestProjectUnknownModel(t *testing.T) {
	st := store.New()
	if _, err := Project(context.Background(), st, ProjectOptions{Model: "nope"}, Budget{}); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestTopScoresAndComponents(t *testing.T) {
	g := figure1(t)
	st, names := loadScheme(t, g, pgrdf.NG)
	cs := mustProject(t, st, ProjectOptions{Model: names.All, Scheme: pgrdf.NG, Reverse: true})
	pr, err := Runner{Parallelism: 1}.PageRank(context.Background(), cs, PageRankOptions{})
	if err != nil {
		t.Fatal(err)
	}
	top := TopScores(cs, pr.Scores, 1)
	if len(top) != 1 || top[0].Term != "http://pg/v2" {
		t.Fatalf("top = %+v, want v2 first (it has the in-edge)", top)
	}
	wcc, err := Runner{Parallelism: 1}.WCC(context.Background(), cs)
	if err != nil {
		t.Fatal(err)
	}
	comps := TopComponents(cs, wcc, 0)
	if len(comps) != 1 || comps[0].Size != 2 || comps[0].Term != "http://pg/v1" {
		t.Fatalf("components = %+v", comps)
	}
}
