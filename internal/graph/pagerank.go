package graph

import (
	"context"
	"math"
)

// PageRankOptions tune the PageRank iteration. Zero values select the
// conventional defaults.
type PageRankOptions struct {
	// Damping is the damping factor d; 0 selects 0.85.
	Damping float64
	// MaxIterations caps the number of power iterations; 0 selects 50.
	MaxIterations int
	// Tolerance stops the iteration once the L1 delta between
	// consecutive rank vectors falls to or below it; 0 selects 1e-6.
	// Negative disables early convergence.
	Tolerance float64
	// Weighted distributes rank along out-edges proportionally to the
	// projected edge weights instead of uniformly. Requires a CSR
	// projected with a WeightKey.
	Weighted bool
}

func (o PageRankOptions) withDefaults() PageRankOptions {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 50
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-6
	}
	return o
}

// PageRankResult holds the converged rank vector, indexed by vertex.
type PageRankResult struct {
	Scores     []float64
	Iterations int
	Converged  bool
}

// PageRank runs power iteration over the reverse adjacency: each
// iteration first scatters per-vertex contributions cur[u]/outWeight[u]
// into an immutable buffer, then every vertex gathers its in-edges into
// the next buffer (pull form — each next[v] has exactly one writer, so
// workers share no mutable state). Dangling mass and the convergence
// delta are folded from per-morsel partials in morsel order, keeping
// the floating-point result byte-identical at every Parallelism.
func (r Runner) PageRank(ctx context.Context, cs *CSR, opts PageRankOptions) (res *PageRankResult, err error) {
	defer recoverAlgoPanic(&err)
	if !cs.HasReverse() {
		return nil, &AlgoError{Kind: ErrInternal, Msg: "PageRank requires a CSR with a reverse adjacency (ProjectOptions.Reverse)"}
	}
	if opts.Weighted && !cs.Weighted() {
		return nil, &AlgoError{Kind: ErrInternal, Msg: "weighted PageRank requires a CSR projected with a WeightKey"}
	}
	opts = opts.withDefaults()
	cancel, g, err := startRun(ctx, r.Budget)
	if err != nil {
		return nil, err
	}
	defer cancel()

	n := cs.NumVertices()
	if n == 0 {
		return &PageRankResult{Scores: []float64{}, Converged: true}, nil
	}
	w := r.workers()
	nm := numMorsels(n)

	// outW[u] is the total weight leaving u: the out-degree when
	// unweighted, the row's weight sum (in row order) when weighted.
	outW := make([]float64, n)
	ok := runMorsels(w, n, g, func(m, lo, hi int) bool {
		for v := lo; v < hi; v++ {
			if opts.Weighted {
				s := 0.0
				for _, ew := range cs.NeighborWeights(uint32(v)) {
					s += ew
				}
				outW[v] = s
			} else {
				outW[v] = float64(cs.OutDegree(uint32(v)))
			}
		}
		return g.tickN(hi - lo)
	})
	if !ok {
		return nil, runError(g)
	}

	inv := 1.0 / float64(n)
	cur := make([]float64, n)
	for v := range cur {
		cur[v] = inv
	}
	next := make([]float64, n)
	contrib := make([]float64, n)
	danglingPart := make([]float64, nm)
	deltaPart := make([]float64, nm)

	res = &PageRankResult{}
	for it := 0; it < opts.MaxIterations; it++ {
		// Phase A: scatter contributions, collect dangling mass.
		ok := runMorsels(w, n, g, func(m, lo, hi int) bool {
			d := 0.0
			for v := lo; v < hi; v++ {
				if outW[v] > 0 {
					contrib[v] = cur[v] / outW[v]
				} else {
					contrib[v] = 0
					d += cur[v]
				}
			}
			danglingPart[m] = d
			return g.tickN(hi - lo)
		})
		if !ok {
			return nil, runError(g)
		}
		base := (1-opts.Damping)*inv + opts.Damping*foldFloat(danglingPart)*inv

		// Phase B: gather in-edges; one writer per next[v].
		ok = runMorsels(w, n, g, func(m, lo, hi int) bool {
			dl := 0.0
			edges := 0
			for v := lo; v < hi; v++ {
				s := 0.0
				in := cs.InNeighbors(uint32(v))
				if opts.Weighted {
					iw := cs.InNeighborWeights(uint32(v))
					for i, u := range in {
						s += contrib[u] * iw[i]
					}
				} else {
					for _, u := range in {
						s += contrib[u]
					}
				}
				edges += len(in)
				nv := base + opts.Damping*s
				next[v] = nv
				dl += math.Abs(nv - cur[v])
			}
			deltaPart[m] = dl
			return g.tickN(edges + (hi - lo))
		})
		if !ok {
			return nil, runError(g)
		}
		cur, next = next, cur
		res.Iterations = it + 1
		if delta := foldFloat(deltaPart); opts.Tolerance >= 0 && delta <= opts.Tolerance {
			res.Converged = true
			break
		}
	}
	res.Scores = cur
	return res, nil
}

// runError resolves the abort cause of a morsel phase: the latched
// guard violation, or an internal error if a worker aborted without
// one (which would indicate a runtime bug).
func runError(g *guard) error {
	if err := g.Err(); err != nil {
		return err
	}
	return &AlgoError{Kind: ErrInternal, Msg: "morsel phase aborted without a guard violation"}
}
