package graph

import "context"

// TrianglesResult holds the undirected triangle count.
type TrianglesResult struct {
	Count int64
}

// Triangles counts the distinct triangles of the underlying undirected
// simple graph (edge direction and self-loops ignored), the standard
// degree-ordered intersection algorithm: every undirected edge is
// oriented from its lower-ranked endpoint to its higher-ranked one —
// rank being (undirected degree, vertex index) — which turns each
// triangle into exactly one wedge u -> v, u -> w with an oriented edge
// v -> w, found by intersecting the sorted oriented rows of u and v.
// Counting is integer arithmetic folded from per-morsel partials, so
// the result is trivially parallelism-independent; the degree-ordered
// orientation bounds each oriented row by O(sqrt(E)), which is what
// makes the intersection pass feasible on skewed degree distributions.
func (r Runner) Triangles(ctx context.Context, cs *CSR) (res *TrianglesResult, err error) {
	defer recoverAlgoPanic(&err)
	if !cs.HasReverse() {
		return nil, &AlgoError{Kind: ErrInternal, Msg: "Triangles requires a CSR with a reverse adjacency (ProjectOptions.Reverse)"}
	}
	cancel, g, err := startRun(ctx, r.Budget)
	if err != nil {
		return nil, err
	}
	defer cancel()

	n := cs.NumVertices()
	res = &TrianglesResult{}
	if n == 0 {
		return res, nil
	}
	w := r.workers()
	nm := numMorsels(n)

	// Phase 1: undirected degree of every vertex — the size of the
	// merged, deduplicated union of its out- and in-rows, minus self.
	udeg := make([]uint32, n)
	ok := runMorsels(w, n, g, func(m, lo, hi int) bool {
		edges := 0
		for v := lo; v < hi; v++ {
			out, in := cs.Neighbors(uint32(v)), cs.InNeighbors(uint32(v))
			udeg[v] = uint32(mergedCount(uint32(v), out, in, nil))
			edges += len(out) + len(in)
		}
		return g.tickN(edges + (hi - lo))
	})
	if !ok {
		return nil, runError(g)
	}

	// rankLess orders vertices by (undirected degree, index); edges are
	// oriented from lower to higher rank.
	rankLess := func(a, b uint32) bool {
		if udeg[a] != udeg[b] {
			return udeg[a] < udeg[b]
		}
		return a < b
	}

	// Phase 2: size of each oriented row.
	ocnt := make([]uint32, n)
	ok = runMorsels(w, n, g, func(m, lo, hi int) bool {
		edges := 0
		for v := lo; v < hi; v++ {
			out, in := cs.Neighbors(uint32(v)), cs.InNeighbors(uint32(v))
			c := 0
			mergedCount(uint32(v), out, in, func(u uint32) {
				if rankLess(uint32(v), u) {
					c++
				}
			})
			ocnt[v] = uint32(c)
			edges += len(out) + len(in)
		}
		return g.tickN(edges + (hi - lo))
	})
	if !ok {
		return nil, runError(g)
	}

	// Serial prefix sum over the oriented row sizes, then a parallel
	// fill: each vertex writes only its own row.
	ooff := make([]uint32, n+1)
	for v := 0; v < n; v++ {
		ooff[v+1] = ooff[v] + ocnt[v]
	}
	onbr := make([]uint32, ooff[n])
	ok = runMorsels(w, n, g, func(m, lo, hi int) bool {
		edges := 0
		for v := lo; v < hi; v++ {
			out, in := cs.Neighbors(uint32(v)), cs.InNeighbors(uint32(v))
			p := ooff[v]
			mergedCount(uint32(v), out, in, func(u uint32) {
				if rankLess(uint32(v), u) {
					onbr[p] = u
					p++
				}
			})
			edges += len(out) + len(in)
		}
		return g.tickN(edges + (hi - lo))
	})
	if !ok {
		return nil, runError(g)
	}

	// Phase 3: for every oriented edge u -> v, intersect the sorted
	// oriented rows of u and v; each match closes one triangle, and the
	// orientation guarantees each triangle is counted exactly once (at
	// its lowest-ranked corner).
	countPart := make([]int64, nm)
	ok = runMorsels(w, n, g, func(m, lo, hi int) bool {
		c := int64(0)
		work := 0
		for u := lo; u < hi; u++ {
			row := onbr[ooff[u]:ooff[u+1]]
			for _, v := range row {
				c += intersectCount(row, onbr[ooff[v]:ooff[v+1]])
				work += len(row)
			}
		}
		countPart[m] = c
		return g.tickN(work + (hi - lo))
	})
	if !ok {
		return nil, runError(g)
	}
	res.Count = foldInt(countPart)
	return res, nil
}

// mergedCount walks the union of two sorted ascending rows, skipping
// duplicates and the vertex itself, calling visit (when non-nil) for
// every distinct neighbor and returning the distinct count.
func mergedCount(self uint32, a, b []uint32, visit func(uint32)) int {
	n := 0
	emit := func(u uint32) {
		if u == self {
			return
		}
		n++
		if visit != nil {
			visit(u)
		}
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			emit(a[i])
			i++
		case a[i] > b[j]:
			emit(b[j])
			j++
		default:
			emit(a[i])
			i++
			j++
		}
	}
	for ; i < len(a); i++ {
		emit(a[i])
	}
	for ; j < len(b); j++ {
		emit(b[j])
	}
	return n
}

// intersectCount returns the size of the intersection of two sorted
// ascending rows.
func intersectCount(a, b []uint32) int64 {
	c := int64(0)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			c++
			i++
			j++
		}
	}
	return c
}
