package graph

import "context"

// WCCResult labels every vertex with the smallest vertex index of its
// weakly-connected component.
type WCCResult struct {
	// Labels maps vertex -> component representative (the minimum
	// vertex index in the component, i.e. Labels[rep] == rep).
	Labels     []uint32
	Components int
	Iterations int
}

// WCC computes weakly-connected components by min-label propagation
// with pointer jumping: each round every vertex takes the minimum of
// its own label, its label's label (the jump, which collapses long
// chains in O(log n) rounds), and the labels of its neighbors in both
// directions. Labels only decrease, all reads go to the immutable
// previous-round buffer, and every next[v] has exactly one writer, so
// the fixpoint — and every intermediate round — is identical at any
// Parallelism. At the fixpoint adjacent vertices must share a label,
// and since labels start as vertex indexes and only ever decrease to
// another label in the same component, the shared label is the
// component's minimum index.
func (r Runner) WCC(ctx context.Context, cs *CSR) (res *WCCResult, err error) {
	defer recoverAlgoPanic(&err)
	if !cs.HasReverse() {
		return nil, &AlgoError{Kind: ErrInternal, Msg: "WCC requires a CSR with a reverse adjacency (ProjectOptions.Reverse)"}
	}
	cancel, g, err := startRun(ctx, r.Budget)
	if err != nil {
		return nil, err
	}
	defer cancel()

	n := cs.NumVertices()
	res = &WCCResult{Labels: make([]uint32, n)}
	if n == 0 {
		return res, nil
	}
	w := r.workers()
	nm := numMorsels(n)

	cur := res.Labels
	for v := range cur {
		cur[v] = uint32(v)
	}
	next := make([]uint32, n)
	changedPart := make([]bool, nm)

	for {
		ok := runMorsels(w, n, g, func(m, lo, hi int) bool {
			changed := false
			edges := 0
			for v := lo; v < hi; v++ {
				lbl := cur[v]
				if j := cur[lbl]; j < lbl {
					lbl = j
				}
				out := cs.Neighbors(uint32(v))
				for _, u := range out {
					if cur[u] < lbl {
						lbl = cur[u]
					}
				}
				in := cs.InNeighbors(uint32(v))
				for _, u := range in {
					if cur[u] < lbl {
						lbl = cur[u]
					}
				}
				edges += len(out) + len(in)
				next[v] = lbl
				if lbl != cur[v] {
					changed = true
				}
			}
			changedPart[m] = changed
			return g.tickN(edges + (hi - lo))
		})
		if !ok {
			return nil, runError(g)
		}
		cur, next = next, cur
		res.Iterations++
		if !foldBool(changedPart) {
			break
		}
	}
	res.Labels = cur
	for v, lbl := range cur {
		if lbl == uint32(v) {
			res.Components++
		}
	}
	return res, nil
}
