package graph

import (
	"sort"

	"repro/internal/rdf"
)

// Ranked pairs a vertex term with its score, the wire shape of top-k
// results on the CLI and HTTP surfaces.
type Ranked struct {
	Term  string  `json:"term"`
	Score float64 `json:"score"`
}

// TopScores returns the k highest-scoring vertices (all of them when
// k <= 0 or k > NumVertices), ordered by descending score with ties
// broken by the canonical term order, so the listing is deterministic.
func TopScores(cs *CSR, scores []float64, k int) []Ranked {
	n := cs.NumVertices()
	idx := make([]uint32, n)
	for v := range idx {
		idx[v] = uint32(v)
	}
	sort.Slice(idx, func(i, j int) bool {
		a, b := idx[i], idx[j]
		if scores[a] != scores[b] {
			return scores[a] > scores[b]
		}
		return a < b
	})
	if k <= 0 || k > n {
		k = n
	}
	out := make([]Ranked, k)
	for i := 0; i < k; i++ {
		out[i] = Ranked{Term: termLabel(cs.terms[idx[i]]), Score: scores[idx[i]]}
	}
	return out
}

// Component describes one weakly-connected component: its
// representative vertex term and its size.
type Component struct {
	Term string `json:"term"`
	Size int    `json:"size"`
}

// TopComponents returns the k largest components (all when k <= 0),
// ordered by descending size with ties broken by the representative's
// canonical order.
func TopComponents(cs *CSR, res *WCCResult, k int) []Component {
	size := make(map[uint32]int)
	for _, lbl := range res.Labels {
		size[lbl]++
	}
	reps := make([]uint32, 0, len(size))
	for rep := range size {
		reps = append(reps, rep)
	}
	sort.Slice(reps, func(i, j int) bool {
		a, b := reps[i], reps[j]
		if size[a] != size[b] {
			return size[a] > size[b]
		}
		return a < b
	})
	if k <= 0 || k > len(reps) {
		k = len(reps)
	}
	out := make([]Component, k)
	for i := 0; i < k; i++ {
		out[i] = Component{Term: termLabel(cs.terms[reps[i]]), Size: size[reps[i]]}
	}
	return out
}

// termLabel renders a vertex term for result listings: the bare IRI
// string for IRIs (the overwhelmingly common case under the paper's
// vocabulary), N-Triples syntax otherwise.
func termLabel(t rdf.Term) string {
	if t.IsIRI() {
		return t.Value
	}
	return t.String()
}
