package graph

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/pgrdf"
	"repro/internal/rdf"
	"repro/internal/store"
)

// ProjectOptions selects which edge relation to extract from the store.
type ProjectOptions struct {
	// Model is a model or virtual-model name; "" means every model.
	Model string
	// Scheme is the PG-as-RDF model the dataset was transformed under.
	// Use DetectScheme when the caller does not know.
	Scheme pgrdf.Scheme
	// Vocab controls the IRI namespaces; zero value = paper defaults.
	Vocab pgrdf.Vocabulary
	// Label restricts the projection to edges with this label (a rel:
	// predicate local name); "" projects every relationship predicate.
	Label string
	// WeightKey names an edge property to project as the edge weight.
	// Parallel identified edges sum their weights; an identified edge
	// without the key weighs 1. "" projects an unweighted graph.
	WeightKey string
	// Reverse also builds the in-adjacency (required by PageRank).
	Reverse bool
}

// vocabOrDefault fills in the paper's namespaces for a zero Vocabulary.
func vocabOrDefault(v pgrdf.Vocabulary) pgrdf.Vocabulary {
	if v == (pgrdf.Vocabulary{}) {
		return pgrdf.DefaultVocabulary()
	}
	return v
}

// projector carries the per-run state of one projection: resolved
// dictionary IDs, the scheme decoders' intermediate maps, and the
// accumulating vertex/edge sets (all in store-ID space until the final
// canonical renumbering).
type projector struct {
	st    *store.Store
	dict  *store.Dict
	guard *guard
	opts  ProjectOptions

	relNS   string
	labelID store.ID // NoID when opts.Label == "" or label unknown
	typeID, resourceID,
	subjID, predID, objID,
	spoID, weightID store.ID

	isRel map[store.ID]bool // predicate ID -> is a rel: IRI

	vertices map[store.ID]struct{}
	edges    []idEdge

	// RF join state: reified statement resource -> components.
	rfSubj, rfObj, rfPred map[store.ID]store.ID
	// SP state: edge predicate -> label predicate.
	spLabel map[store.ID]store.ID
	// Weight state: edge resource/predicate ID -> parsed weight.
	weights map[store.ID]float64
}

// idEdge is an edge occurrence in store-ID space. edge is the edge
// resource ID (reified statement, named graph, or subproperty
// predicate) used for weight lookup; NoID for plain triples.
type idEdge struct {
	src, dst, edge store.ID
}

// Project extracts the edge relation selected by opts from a consistent
// snapshot of the store and assembles it into a CSR. It honors ctx
// cancellation and the budget; every drained quad costs one work unit.
func Project(ctx context.Context, st *store.Store, opts ProjectOptions, b Budget) (cs *CSR, err error) {
	defer recoverAlgoPanic(&err)
	cancel, g, err := startRun(ctx, b)
	if err != nil {
		return nil, err
	}
	defer cancel()

	models, err := st.ResolveDataset(opts.Model)
	if err != nil {
		return nil, &AlgoError{Kind: ErrInternal, Msg: err.Error()}
	}
	opts.Vocab = vocabOrDefault(opts.Vocab)

	p := &projector{
		st:       st,
		dict:     st.Dict(),
		guard:    g,
		opts:     opts,
		relNS:    opts.Vocab.RelNS,
		isRel:    make(map[store.ID]bool),
		vertices: make(map[store.ID]struct{}),
		rfSubj:   make(map[store.ID]store.ID),
		rfObj:    make(map[store.ID]store.ID),
		rfPred:   make(map[store.ID]store.ID),
		spLabel:  make(map[store.ID]store.ID),
		weights:  make(map[store.ID]float64),
	}
	lookup := func(iri string) store.ID { return p.dict.Lookup(rdf.NewIRI(iri)) }
	p.typeID = lookup(rdf.RDFType)
	p.resourceID = lookup(rdf.RDFSResource)
	p.subjID = lookup(rdf.RDFSubject)
	p.predID = lookup(rdf.RDFPredicate)
	p.objID = lookup(rdf.RDFObject)
	p.spoID = lookup(rdf.RDFSSubPropertyOf)
	if opts.Label != "" {
		p.labelID = p.dict.Lookup(opts.Vocab.LabelIRI(opts.Label))
	}
	if opts.WeightKey != "" {
		p.weightID = p.dict.Lookup(opts.Vocab.KeyIRI(opts.WeightKey))
	}

	for _, m := range models {
		if !p.decodeModel(m) {
			break
		}
	}
	if err := finish(g, nil); err != nil {
		return nil, err
	}

	return p.assemble(), nil
}

// decodeModel runs the plain-triple decoder, the scheme-specific
// decoder, the isolated-vertex scan and the weight scan over one model.
// It reports false when the guard tripped.
func (p *projector) decodeModel(m store.ModelID) bool {
	// Plain s-p-o edges in the default graph: the ExplicitSPO triples of
	// RF/SP and the SingleTripleWhenNoKVs optimization of every scheme.
	// Deduplication in buildCSR collapses them with their identified
	// counterparts, so accepting them unconditionally keeps the
	// projection correct across every Options combination.
	anyP := store.Pattern{S: store.Any, P: store.Any, C: store.Any, G: store.NoID, M: store.ID(m)}
	if p.opts.Label != "" {
		if p.labelID == store.NoID {
			// Unknown label IRI: no edge in any scheme can match, but
			// isolated vertices are still part of the projection.
			return p.scanIsolated(m)
		}
		anyP.P = p.labelID
	}
	ok := p.drain(anyP, func(q store.IDQuad) bool {
		if q.P == p.spoID || !p.relPred(q.P) {
			return true
		}
		p.addEdge(q.S, q.C, store.NoID)
		return true
	})
	if !ok {
		return false
	}

	switch p.opts.Scheme {
	case pgrdf.RF:
		ok = p.decodeRF(m)
	case pgrdf.NG:
		ok = p.decodeNG(m)
	case pgrdf.SP:
		ok = p.decodeSP(m)
	}
	if !ok {
		return false
	}
	if !p.scanIsolated(m) {
		return false
	}
	return p.scanWeights(m)
}

// decodeNG accepts named-graph quads s-p-o with a relationship
// predicate; the graph term is the edge resource (§2.3 NG).
func (p *projector) decodeNG(m store.ModelID) bool {
	pat := store.Pattern{S: store.Any, P: store.Any, C: store.Any, G: store.Any, M: store.ID(m)}
	if p.labelID != store.NoID {
		pat.P = p.labelID
	}
	return p.drain(pat, func(q store.IDQuad) bool {
		if q.G == store.NoID || !p.relPred(q.P) {
			return true
		}
		p.addEdge(q.S, q.C, q.G)
		return true
	})
}

// decodeRF joins the e-rdf:subject-s / e-rdf:predicate-p /
// e-rdf:object-o triples of the reification scheme (§2.3 RF) by their
// statement resource.
func (p *projector) decodeRF(m store.ModelID) bool {
	collect := func(pred store.ID, into map[store.ID]store.ID) bool {
		if pred == store.NoID {
			return true
		}
		pat := store.Pattern{S: store.Any, P: pred, C: store.Any, G: store.Any, M: store.ID(m)}
		return p.drain(pat, func(q store.IDQuad) bool {
			into[q.S] = q.C
			return true
		})
	}
	if !collect(p.subjID, p.rfSubj) || !collect(p.predID, p.rfPred) || !collect(p.objID, p.rfObj) {
		return false
	}
	for e, s := range p.rfSubj {
		o, okO := p.rfObj[e]
		lbl, okP := p.rfPred[e]
		if !okO || !okP || !p.matchLabel(lbl) {
			continue
		}
		p.addEdge(s, o, e)
		if !p.guard.tickN(1) {
			return false
		}
	}
	return true
}

// decodeSP first maps edge predicates to labels via their
// e-rdfs:subPropertyOf-p anchors, then accepts s-e-o triples whose
// predicate is a known edge predicate (§2.3 SP).
func (p *projector) decodeSP(m store.ModelID) bool {
	if p.spoID == store.NoID {
		return true
	}
	pat := store.Pattern{S: store.Any, P: p.spoID, C: store.Any, G: store.Any, M: store.ID(m)}
	ok := p.drain(pat, func(q store.IDQuad) bool {
		p.spLabel[q.S] = q.C
		return true
	})
	if !ok || len(p.spLabel) == 0 {
		return ok
	}
	all := store.Pattern{S: store.Any, P: store.Any, C: store.Any, G: store.NoID, M: store.ID(m)}
	return p.drain(all, func(q store.IDQuad) bool {
		lbl, isEdge := p.spLabel[q.P]
		if !isEdge || !p.matchLabel(lbl) {
			return true
		}
		p.addEdge(q.S, q.C, q.P)
		return true
	})
}

// scanIsolated adds the -v-rdf:type-rdf:Resource vertices, which every
// scheme emits for vertices with no KVs and no incident edges.
func (p *projector) scanIsolated(m store.ModelID) bool {
	if p.typeID == store.NoID || p.resourceID == store.NoID {
		return true
	}
	pat := store.Pattern{S: store.Any, P: p.typeID, C: p.resourceID, G: store.Any, M: store.ID(m)}
	return p.drain(pat, func(q store.IDQuad) bool {
		p.vertices[q.S] = struct{}{}
		return true
	})
}

// scanWeights collects -e-key-V literals for the weight key. The edge
// resource is the subject in every scheme (in SP the same resource is
// the edge predicate of the anchor triple).
func (p *projector) scanWeights(m store.ModelID) bool {
	if p.weightID == store.NoID {
		return true
	}
	pat := store.Pattern{S: store.Any, P: p.weightID, C: store.Any, G: store.Any, M: store.ID(m)}
	return p.drain(pat, func(q store.IDQuad) bool {
		val, ok := rdf.LiteralValue(p.dict.Term(q.C))
		if !ok || !val.IsNumeric() {
			return true
		}
		p.weights[q.S] = val.Float()
		return true
	})
}

// drain opens a snapshot cursor for pat and consumes it
// batch-at-a-time, ticking the guard one work unit per drained quad —
// the projector's only row source, so every scan is a cancellation
// point by construction (the guardtick analyzer enforces this). It
// reports false when the guard tripped or fn aborted.
func (p *projector) drain(pat store.Pattern, fn func(store.IDQuad) bool) bool {
	cur := p.st.Cursor(pat)
	defer cur.Close()
	for {
		batch := cur.NextBatch(store.DefaultBatchRows)
		if len(batch) == 0 {
			return true
		}
		if !p.guard.tickN(len(batch)) {
			return false
		}
		for _, q := range batch {
			if !fn(q) {
				return false
			}
		}
	}
}

// relPred reports whether predicate ID pid is a relationship IRI,
// caching the dictionary round-trip per distinct predicate.
func (p *projector) relPred(pid store.ID) bool {
	if is, ok := p.isRel[pid]; ok {
		return is
	}
	t := p.dict.Term(pid)
	is := t.IsIRI() && strings.HasPrefix(t.Value, p.relNS)
	p.isRel[pid] = is
	return is
}

// matchLabel applies the label filter to a label predicate ID.
func (p *projector) matchLabel(lbl store.ID) bool {
	if p.labelID != store.NoID {
		return lbl == p.labelID
	}
	return p.relPred(lbl)
}

func (p *projector) addEdge(src, dst, edge store.ID) {
	p.vertices[src] = struct{}{}
	p.vertices[dst] = struct{}{}
	p.edges = append(p.edges, idEdge{src: src, dst: dst, edge: edge})
}

// assemble renumbers the vertex set into canonical term order and
// builds the CSR.
func (p *projector) assemble() *CSR {
	terms := make([]rdf.Term, 0, len(p.vertices))
	ids := make([]store.ID, 0, len(p.vertices))
	for id := range p.vertices {
		ids = append(ids, id)
		terms = append(terms, p.dict.Term(id))
	}
	// Sort ids by their terms' canonical order, then derive the ID ->
	// vertex-index map from the sorted positions.
	idx := make([]int, len(ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return rdf.Compare(terms[idx[i]], terms[idx[j]]) < 0 })
	sorted := make([]rdf.Term, len(ids))
	vertexOf := make(map[store.ID]uint32, len(ids))
	for v, i := range idx {
		sorted[v] = terms[i]
		vertexOf[ids[i]] = uint32(v)
	}

	weighted := p.opts.WeightKey != ""
	raw := make([]rawEdge, len(p.edges))
	for i, e := range p.edges {
		re := rawEdge{src: vertexOf[e.src], dst: vertexOf[e.dst]}
		if e.edge != store.NoID {
			re.identified = true
			if weighted {
				if w, ok := p.weights[e.edge]; ok {
					re.w = w
				} else {
					re.w = 1
				}
			}
		}
		raw[i] = re
	}
	return buildCSR(sorted, raw, weighted, p.opts.Reverse)
}

// DetectScheme sniffs which PG-as-RDF scheme a model was transformed
// under by probing for each scheme's signature quads: rdf:subject
// reification triples (RF), rdfs:subPropertyOf edge anchors (SP), and
// relationship quads in named graphs (NG). Datasets holding only plain
// s-p-o relationship triples (the SingleTripleWhenNoKVs degenerate
// case) decode identically under every scheme; NG is reported.
func DetectScheme(st *store.Store, model string, vocab pgrdf.Vocabulary) (pgrdf.Scheme, error) {
	models, err := st.ResolveDataset(model)
	if err != nil {
		return pgrdf.NG, fmt.Errorf("graph: detect scheme: %w", err)
	}
	vocab = vocabOrDefault(vocab)
	dict := st.Dict()
	probe := func(pat store.Pattern, accept func(store.IDQuad) bool) bool {
		found := false
		for _, m := range models {
			pat.M = store.ID(m)
			//pgrdfvet:ignore guardtick -- first-match probe over one predicate's postings; stops at the first accepted quad and has no request budget to tick
			st.Scan(pat, func(q store.IDQuad) bool {
				if accept == nil || accept(q) {
					found = true
					return false
				}
				return true
			})
			if found {
				break
			}
		}
		return found
	}
	if id := dict.Lookup(rdf.NewIRI(rdf.RDFSubject)); id != store.NoID {
		pat := store.Pattern{S: store.Any, P: id, C: store.Any, G: store.Any}
		if probe(pat, nil) {
			return pgrdf.RF, nil
		}
	}
	if id := dict.Lookup(rdf.NewIRI(rdf.RDFSSubPropertyOf)); id != store.NoID {
		pat := store.Pattern{S: store.Any, P: id, C: store.Any, G: store.Any}
		relNS := vocab.RelNS
		if probe(pat, func(q store.IDQuad) bool {
			t := dict.Term(q.C)
			return t.IsIRI() && strings.HasPrefix(t.Value, relNS)
		}) {
			return pgrdf.SP, nil
		}
	}
	return pgrdf.NG, nil
}
