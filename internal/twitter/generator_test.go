package twitter

import (
	"testing"

	"repro/internal/pg"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := TestConfig()
	a := Generate(cfg)
	b := Generate(cfg)
	sa, sb := a.ComputeStats(), b.ComputeStats()
	if sa != sb {
		t.Fatalf("same seed, different stats: %+v vs %+v", sa, sb)
	}
	cfg.Seed++
	c := Generate(cfg)
	if c.ComputeStats() == sa {
		t.Error("different seed produced identical stats (suspicious)")
	}
}

// TestShapeMatchesPaper checks the qualitative dataset characteristics
// of Table 6 at reduced scale:
//   - highly connected: edges >> nodes
//   - edge KVs > node KVs (the KV-intersection rule with shared ego
//     pools makes edge KVs dominate)
//   - knows edges are a small fraction of follows edges
//   - exactly the two labels and two keys of §4.2
func TestShapeMatchesPaper(t *testing.T) {
	g := Generate(TestConfig())
	st := g.ComputeStats()
	t.Logf("generated: %+v", st)
	if st.Vertices < 100 {
		t.Fatalf("too few vertices: %d", st.Vertices)
	}
	if st.Edges < 2*st.Vertices {
		t.Errorf("graph not highly connected: V=%d E=%d", st.Vertices, st.Edges)
	}
	if st.EdgeKVs <= st.NodeKVs {
		t.Errorf("edge KVs (%d) should exceed node KVs (%d) as in Table 6", st.EdgeKVs, st.NodeKVs)
	}
	if st.EdgeLabels != 2 {
		t.Errorf("labels = %d, want 2 (follows, knows)", st.EdgeLabels)
	}
	if st.NodeKeys != 2 || st.EdgeKeys != 2 {
		t.Errorf("keys: node=%d edge=%d, want 2 (refs, hasTag)", st.NodeKeys, st.EdgeKeys)
	}

	follows, knows := 0, 0
	g.Edges(func(e *pg.Edge) bool {
		switch e.Label {
		case "follows":
			follows++
		case "knows":
			knows++
		}
		return true
	})
	if knows == 0 || follows == 0 {
		t.Fatalf("follows=%d knows=%d", follows, knows)
	}
	if knows*4 > follows {
		t.Errorf("knows (%d) should be well below follows (%d), ratio ~13:1 in the paper", knows, follows)
	}
}

// TestDegreeDistributionHeavyTailed checks the Figure 4 shape: the
// maximum in-degree is far above the mean (popular nodes), and the
// distribution is monotone-ish decreasing in the tail.
func TestDegreeDistributionHeavyTailed(t *testing.T) {
	g := Generate(TestConfig())
	_, in := g.DegreeDistribution()
	maxDeg, total, count := 0, 0, 0
	for deg, n := range in {
		if deg > maxDeg {
			maxDeg = deg
		}
		total += deg * n
		count += n
	}
	mean := float64(total) / float64(count)
	if float64(maxDeg) < 5*mean {
		t.Errorf("max in-degree %d not heavy-tailed vs mean %.1f", maxDeg, mean)
	}
}

func TestEdgeKVsAreEndpointIntersections(t *testing.T) {
	g := Generate(TestConfig())
	checked := 0
	violations := 0
	g.Edges(func(e *pg.Edge) bool {
		src, dst := g.Vertex(e.Src), g.Vertex(e.Dst)
		for _, k := range e.Keys() {
			for _, v := range e.Values(k) {
				if !hasKV(src, k, v) || !hasKV(dst, k, v) {
					violations++
				}
			}
		}
		checked++
		return checked < 2000
	})
	if violations != 0 {
		t.Errorf("%d edge KVs not in both endpoints' KV sets", violations)
	}
}

func hasKV(v *pg.Vertex, key string, val pg.Value) bool {
	for _, have := range v.Values(key) {
		if have == val {
			return true
		}
	}
	return false
}

func TestScale(t *testing.T) {
	base := PaperConfig()
	half := base.Scale(0.5)
	if half.Egos != base.Egos/2 {
		t.Errorf("Scale(0.5).Egos = %d", half.Egos)
	}
	tiny := base.Scale(0.00001)
	if tiny.Egos != 1 {
		t.Errorf("Scale floor = %d, want 1", tiny.Egos)
	}
	// Scaling roughly scales all counts.
	s1 := Generate(PaperConfig().Scale(0.01)).ComputeStats()
	s2 := Generate(PaperConfig().Scale(0.02)).ComputeStats()
	if s2.Edges < s1.Edges*3/2 {
		t.Errorf("doubling egos should grow edges: %d -> %d", s1.Edges, s2.Edges)
	}
}

func TestGeneratePanicsOnBadConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on zero-ego config")
		}
	}()
	Generate(Config{})
}
