// Package twitter generates synthetic Twitter-like ego-network property
// graphs with the construction rules of the paper's §4.2, substituting
// for the SNAP egonets-Twitter dataset (which is not redistributable
// here):
//
//   - the graph is a union of ego networks; each ego a has a member set
//     and the network contains `b follows c` edges among members, which
//     "implicitly means a knows b and a knows c" — so `a knows m` edges
//     link the ego to its members;
//   - each node has features of the form @keyword or #tag, stored as
//     multi-valued node KVs `refs @keyword` and `hasTag #tag`;
//   - each edge's KVs are the INTERSECTION of its endpoints' KV sets:
//     {KVs of e} = {KVs of a} ∩ {KVs of b}.
//
// Members are drawn from a shared node pool with Zipf-like popularity,
// which yields the paper's highly connected graph with heavy-tailed
// in-degrees; members of one ego draw features from an ego-local pool,
// which makes endpoint KV sets overlap and drives the edge-KV count
// above the node-KV count, as in Table 6.
package twitter

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/pg"
)

// Config controls the generated dataset's scale and shape.
type Config struct {
	// Egos is the number of ego networks (the paper's dataset has 973).
	Egos int
	// MeanMembers is the mean member count per ego (~131 in the paper:
	// 128,200 knows edges over 973 egos).
	MeanMembers int
	// FollowsPerMember is the mean number of follows edges each member
	// has inside an ego (~13 in the paper: 1,667,885 follows edges).
	FollowsPerMember float64
	// PoolFactor scales the shared node pool: pool size =
	// Egos*MeanMembers/PoolFactor. Larger values mean more node
	// sharing across egos (the paper has 76,245 distinct nodes over
	// ~127k ego-member slots, factor ≈ 1.7).
	PoolFactor float64
	// Keywords and Tags size the global feature vocabularies.
	Keywords, Tags int
	// MeanKeywordsPerNode and MeanTagsPerNode control node KV counts
	// (the paper has ~16 KVs per node, refs-heavy).
	MeanKeywordsPerNode, MeanTagsPerNode float64
	// EgoPoolKeywords/EgoPoolTags are the sizes of the per-ego feature
	// pools members draw from; smaller pools increase endpoint KV
	// overlap and hence edge KVs.
	EgoPoolKeywords, EgoPoolTags int
	// MaxMemberships caps how many egos one node can belong to. Each
	// membership adds ~FollowsPerMember outgoing edges, so the cap
	// bounds out-degrees — the paper's Figure 4 shows out-degrees are
	// much lower than in-degrees, and multi-hop path counts (EQ11)
	// blow up without the cap.
	MaxMemberships int
	// Seed makes generation deterministic.
	Seed int64
}

// PaperConfig returns a configuration shaped like the paper's dataset at
// full scale: ~76k nodes, ~1.8M edges, ~1.2M node KVs, ~3.3M edge KVs.
func PaperConfig() Config {
	return Config{
		Egos:                973,
		MeanMembers:         131,
		FollowsPerMember:    13,
		PoolFactor:          1.67,
		Keywords:            20000,
		Tags:                13000,
		MeanKeywordsPerNode: 13,
		MeanTagsPerNode:     3,
		EgoPoolKeywords:     40,
		EgoPoolTags:         12,
		MaxMemberships:      4,
		Seed:                20140324, // EDBT'14 opened March 24, 2014
	}
}

// Scale returns a copy of the config with ego count (and the node pool
// with it) scaled by f. Per-ego density is unchanged, so query
// selectivities keep the paper's shape.
func (c Config) Scale(f float64) Config {
	c.Egos = max(1, int(float64(c.Egos)*f))
	return c
}

// DefaultBenchConfig is the scale used by the repository's benchmarks:
// 1/10 of the paper's egos, which fits comfortably in memory while
// preserving per-ego structure.
func DefaultBenchConfig() Config { return PaperConfig().Scale(0.1) }

// TestConfig is a small config for unit tests.
func TestConfig() Config { return PaperConfig().Scale(0.01) }

// Generate builds the synthetic ego-network property graph.
func Generate(cfg Config) *pg.Graph {
	if cfg.Egos <= 0 || cfg.MeanMembers <= 0 {
		panic("twitter: config must have positive Egos and MeanMembers")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	g := pg.NewGraph()

	poolSize := max(cfg.MeanMembers+1, int(float64(cfg.Egos*cfg.MeanMembers)/cfg.PoolFactor))
	pool := make([]pg.ID, poolSize)
	for i := range pool {
		pool[i] = g.AddVertex().ID
	}

	// Zipf-like popularity for member sampling: popular nodes appear in
	// many egos, giving heavy-tailed in-degrees (Figure 4).
	zipf := rand.NewZipf(rng, 1.4, 8, uint64(poolSize-1))

	features := make(map[pg.ID]*featureSet, poolSize)
	type edgeKey struct {
		src, dst pg.ID
		follows  bool
	}
	seenEdges := make(map[edgeKey]struct{})

	memberships := make(map[pg.ID]int, poolSize)
	maxMemberships := cfg.MaxMemberships
	if maxMemberships <= 0 {
		maxMemberships = 1 << 30 // uncapped
	}

	for ego := 0; ego < cfg.Egos; ego++ {
		// Pick the ego node and its members from the pool.
		egoNode := pool[rng.Intn(poolSize)]
		nMembers := poissonAtLeast(rng, float64(cfg.MeanMembers), 3)
		memberSet := make(map[pg.ID]struct{}, nMembers)
		members := make([]pg.ID, 0, nMembers)
		rejections := 0
		for len(members) < nMembers {
			var m pg.ID
			if rejections < 4*nMembers {
				m = pool[zipf.Uint64()]
			} else {
				// Popular nodes are all at their membership cap; fall
				// back to uniform sampling to terminate.
				m = pool[rng.Intn(poolSize)]
			}
			if m == egoNode {
				continue
			}
			if _, dup := memberSet[m]; dup {
				rejections++
				continue
			}
			if memberships[m] >= maxMemberships {
				rejections++
				continue
			}
			memberSet[m] = struct{}{}
			memberships[m]++
			members = append(members, m)
		}

		// Ego-local feature pools: members of one circle share topics.
		kwPool := make([]feature, cfg.EgoPoolKeywords)
		for i := range kwPool {
			kwPool[i] = feature{key: "refs", val: fmt.Sprintf("@kw%d", rng.Intn(cfg.Keywords))}
		}
		tagPool := make([]feature, cfg.EgoPoolTags)
		for i := range tagPool {
			tagPool[i] = feature{key: "hasTag", val: fmt.Sprintf("#tag%d", rng.Intn(cfg.Tags))}
		}

		// Assign features to members (and the ego) from the pools.
		assign := func(n pg.ID) {
			nk := poisson(rng, cfg.MeanKeywordsPerNode/2) // per ego; nodes in several egos accumulate more
			for i := 0; i < nk; i++ {
				addFeature(g, features, n, kwPool[rng.Intn(len(kwPool))])
			}
			nt := poisson(rng, cfg.MeanTagsPerNode/2)
			for i := 0; i < nt; i++ {
				addFeature(g, features, n, tagPool[rng.Intn(len(tagPool))])
			}
		}
		assign(egoNode)
		for _, m := range members {
			assign(m)
		}

		// knows edges: ego a knows each member.
		for _, m := range members {
			k := edgeKey{src: egoNode, dst: m}
			if _, dup := seenEdges[k]; dup {
				continue
			}
			seenEdges[k] = struct{}{}
			e, err := g.AddEdge(egoNode, m, "knows")
			if err != nil {
				panic(err)
			}
			setEdgeKVs(g, features, e)
		}

		// follows edges among members, preferential within the ego:
		// earlier members are followed more (local hubs).
		nFollows := int(float64(len(members)) * cfg.FollowsPerMember)
		for i := 0; i < nFollows; i++ {
			src := members[rng.Intn(len(members))]
			// Cubic skew toward low indices: the first few members are
			// the ego circle's local celebrities, producing the
			// heavy-tailed in-degrees of Figure 4 while out-degrees
			// stay bounded.
			j := rng.Intn(len(members))
			for draw := 0; draw < 2; draw++ {
				if k := rng.Intn(len(members)); k < j {
					j = k
				}
			}
			dst := members[j]
			if src == dst {
				continue
			}
			ek := edgeKey{src: src, dst: dst, follows: true}
			if _, dup := seenEdges[ek]; dup {
				continue
			}
			seenEdges[ek] = struct{}{}
			e, err := g.AddEdge(src, dst, "follows")
			if err != nil {
				panic(err)
			}
			setEdgeKVs(g, features, e)
		}
	}
	return g
}

type feature struct{ key, val string }

// featureSet keeps both insertion order (for deterministic output) and
// a membership map (for O(1) intersection checks).
type featureSet struct {
	list []feature
	set  map[feature]struct{}
}

func addFeature(g *pg.Graph, features map[pg.ID]*featureSet, n pg.ID, f feature) {
	fs := features[n]
	if fs == nil {
		fs = &featureSet{set: make(map[feature]struct{})}
		features[n] = fs
	}
	if _, dup := fs.set[f]; dup {
		return
	}
	fs.set[f] = struct{}{}
	fs.list = append(fs.list, f)
	g.Vertex(n).AddProperty(f.key, pg.S(f.val))
}

// setEdgeKVs applies the paper's rule: edge KVs are the intersection of
// the endpoints' KV sets.
func setEdgeKVs(g *pg.Graph, features map[pg.ID]*featureSet, e *pg.Edge) {
	srcF, dstF := features[e.Src], features[e.Dst]
	if srcF == nil || dstF == nil {
		return
	}
	small, big := srcF, dstF
	if len(dstF.list) < len(srcF.list) {
		small, big = dstF, srcF
	}
	for _, f := range small.list {
		if _, ok := big.set[f]; ok {
			e.AddProperty(f.key, pg.S(f.val))
		}
	}
}

// poisson draws a Poisson-distributed value (Knuth's method; means here
// are small).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func poissonAtLeast(rng *rand.Rand, mean float64, min int) int {
	v := poisson(rng, mean)
	if v < min {
		return min
	}
	return v
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
