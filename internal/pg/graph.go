// Package pg implements the property graph model of the paper's §1: a
// directed, multi-relational graph whose vertices and edges carry
// key/value properties. Vertex and edge identifiers share a single id
// space unique within the graph (as in the paper's Figure 3, where the
// ObjKVs table mixes vertex and edge ids in one ObjId column).
//
// The API follows the Blueprints style the paper cites as the de facto
// standard access layer: AddVertex / AddEdge / SetProperty / iteration.
package pg

import (
	"fmt"
	"sort"
)

// ID identifies a vertex or an edge; the id space is shared.
type ID int64

// Value is a typed property value. Property graphs allow only scalar
// values on keys (§1), so Value is a closed union of scalar kinds.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
}

// ValueKind discriminates property value types.
type ValueKind uint8

// Property value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindFloat
	KindBool
)

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// F returns a float value.
func F(f float64) Value { return Value{Kind: KindFloat, Float: f} }

// B returns a boolean value.
func B(b bool) Value { return Value{Kind: KindBool, Bool: b} }

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("%g", v.Float)
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	default:
		return v.Str
	}
}

// RelType returns the relational type name used in the ObjKVs table
// (Figure 3): VARCHAR, NUMBER, DOUBLE or BOOLEAN.
func (v Value) RelType() string {
	switch v.Kind {
	case KindInt:
		return "NUMBER"
	case KindFloat:
		return "DOUBLE"
	case KindBool:
		return "BOOLEAN"
	default:
		return "VARCHAR"
	}
}

// Vertex is a graph vertex with its properties. Properties are
// multi-valued with set semantics per key: the paper's Twitter dataset
// attaches many `refs`/`hasTag` values to one node, and edge KVs are
// defined as set intersections of endpoint KVs (§4.2).
type Vertex struct {
	ID    ID
	props map[string][]Value
	out   []ID // outgoing edge ids, in insertion order
	in    []ID // incoming edge ids
}

// Edge is a directed, labeled edge with its properties.
type Edge struct {
	ID    ID
	Label string
	Src   ID
	Dst   ID
	props map[string][]Value
}

// Graph is a mutable in-memory property graph.
type Graph struct {
	vertices map[ID]*Vertex
	edges    map[ID]*Edge
	vOrder   []ID
	eOrder   []ID
	nextID   ID
}

// NewGraph returns an empty property graph.
func NewGraph() *Graph {
	return &Graph{
		vertices: make(map[ID]*Vertex),
		edges:    make(map[ID]*Edge),
		nextID:   1,
	}
}

// reserve bumps the id allocator past id.
func (g *Graph) reserve(id ID) {
	if id >= g.nextID {
		g.nextID = id + 1
	}
}

// AddVertex adds a vertex with an auto-assigned id.
func (g *Graph) AddVertex() *Vertex {
	v, err := g.AddVertexWithID(g.nextID)
	if err != nil {
		panic(err) // unreachable: auto ids never collide
	}
	return v
}

// AddVertexWithID adds a vertex with an explicit id. The id must be
// positive and unused by any vertex or edge.
func (g *Graph) AddVertexWithID(id ID) (*Vertex, error) {
	if id <= 0 {
		return nil, fmt.Errorf("pg: vertex id must be positive, got %d", id)
	}
	if g.idInUse(id) {
		return nil, fmt.Errorf("pg: id %d already in use", id)
	}
	v := &Vertex{ID: id, props: make(map[string][]Value)}
	g.vertices[id] = v
	g.vOrder = append(g.vOrder, id)
	g.reserve(id)
	return v, nil
}

// AddEdge adds a labeled edge with an auto-assigned id. Both endpoints
// must exist.
func (g *Graph) AddEdge(src, dst ID, label string) (*Edge, error) {
	return g.AddEdgeWithID(g.nextID, src, dst, label)
}

// AddEdgeWithID adds an edge with an explicit id.
func (g *Graph) AddEdgeWithID(id, src, dst ID, label string) (*Edge, error) {
	if id <= 0 {
		return nil, fmt.Errorf("pg: edge id must be positive, got %d", id)
	}
	if g.idInUse(id) {
		return nil, fmt.Errorf("pg: id %d already in use", id)
	}
	if label == "" {
		return nil, fmt.Errorf("pg: edge label must not be empty")
	}
	sv, ok := g.vertices[src]
	if !ok {
		return nil, fmt.Errorf("pg: source vertex %d does not exist", src)
	}
	dv, ok := g.vertices[dst]
	if !ok {
		return nil, fmt.Errorf("pg: destination vertex %d does not exist", dst)
	}
	e := &Edge{ID: id, Label: label, Src: src, Dst: dst, props: make(map[string][]Value)}
	g.edges[id] = e
	g.eOrder = append(g.eOrder, id)
	sv.out = append(sv.out, id)
	dv.in = append(dv.in, id)
	g.reserve(id)
	return e, nil
}

func (g *Graph) idInUse(id ID) bool {
	_, v := g.vertices[id]
	_, e := g.edges[id]
	return v || e
}

// Vertex returns a vertex by id, or nil.
func (g *Graph) Vertex(id ID) *Vertex { return g.vertices[id] }

// Edge returns an edge by id, or nil.
func (g *Graph) Edge(id ID) *Edge { return g.edges[id] }

// RemoveEdge deletes an edge.
func (g *Graph) RemoveEdge(id ID) error {
	e, ok := g.edges[id]
	if !ok {
		return fmt.Errorf("pg: edge %d does not exist", id)
	}
	delete(g.edges, id)
	g.eOrder = removeID(g.eOrder, id)
	if sv := g.vertices[e.Src]; sv != nil {
		sv.out = removeID(sv.out, id)
	}
	if dv := g.vertices[e.Dst]; dv != nil {
		dv.in = removeID(dv.in, id)
	}
	return nil
}

// RemoveVertex deletes a vertex and all incident edges.
func (g *Graph) RemoveVertex(id ID) error {
	v, ok := g.vertices[id]
	if !ok {
		return fmt.Errorf("pg: vertex %d does not exist", id)
	}
	for _, eid := range append(append([]ID(nil), v.out...), v.in...) {
		if _, still := g.edges[eid]; still {
			if err := g.RemoveEdge(eid); err != nil {
				return err
			}
		}
	}
	delete(g.vertices, id)
	g.vOrder = removeID(g.vOrder, id)
	return nil
}

func removeID(s []ID, id ID) []ID {
	for i, x := range s {
		if x == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.vertices) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Vertices iterates vertices in insertion order.
func (g *Graph) Vertices(fn func(*Vertex) bool) {
	for _, id := range g.vOrder {
		if v, ok := g.vertices[id]; ok {
			if !fn(v) {
				return
			}
		}
	}
}

// Edges iterates edges in insertion order.
func (g *Graph) Edges(fn func(*Edge) bool) {
	for _, id := range g.eOrder {
		if e, ok := g.edges[id]; ok {
			if !fn(e) {
				return
			}
		}
	}
}

// OutEdges returns the outgoing edges of a vertex.
func (g *Graph) OutEdges(id ID) []*Edge {
	v := g.vertices[id]
	if v == nil {
		return nil
	}
	out := make([]*Edge, 0, len(v.out))
	for _, eid := range v.out {
		out = append(out, g.edges[eid])
	}
	return out
}

// InEdges returns the incoming edges of a vertex.
func (g *Graph) InEdges(id ID) []*Edge {
	v := g.vertices[id]
	if v == nil {
		return nil
	}
	in := make([]*Edge, 0, len(v.in))
	for _, eid := range v.in {
		in = append(in, g.edges[eid])
	}
	return in
}

// SetProperty replaces all values of a vertex key with a single value.
func (v *Vertex) SetProperty(key string, val Value) { v.props[key] = []Value{val} }

// AddProperty adds one more value for the key (set semantics: adding a
// value already present is a no-op).
func (v *Vertex) AddProperty(key string, val Value) { v.props[key] = addValue(v.props[key], val) }

// Property returns the first value of a vertex key.
func (v *Vertex) Property(key string) (Value, bool) {
	vals := v.props[key]
	if len(vals) == 0 {
		return Value{}, false
	}
	return vals[0], true
}

// Values returns all values of a vertex key.
func (v *Vertex) Values(key string) []Value { return v.props[key] }

// RemoveProperty deletes all values of a vertex key.
func (v *Vertex) RemoveProperty(key string) { delete(v.props, key) }

// Keys returns the vertex's property keys, sorted.
func (v *Vertex) Keys() []string { return sortedKeys(v.props) }

// NumProperties returns the number of key/value PAIRS on the vertex
// (multi-valued keys count once per value).
func (v *Vertex) NumProperties() int { return countPairs(v.props) }

// SetProperty replaces all values of an edge key with a single value.
func (e *Edge) SetProperty(key string, val Value) { e.props[key] = []Value{val} }

// AddProperty adds one more value for the key (set semantics).
func (e *Edge) AddProperty(key string, val Value) { e.props[key] = addValue(e.props[key], val) }

// Property returns the first value of an edge key.
func (e *Edge) Property(key string) (Value, bool) {
	vals := e.props[key]
	if len(vals) == 0 {
		return Value{}, false
	}
	return vals[0], true
}

// Values returns all values of an edge key.
func (e *Edge) Values(key string) []Value { return e.props[key] }

// RemoveProperty deletes all values of an edge key.
func (e *Edge) RemoveProperty(key string) { delete(e.props, key) }

// Keys returns the edge's property keys, sorted.
func (e *Edge) Keys() []string { return sortedKeys(e.props) }

// NumProperties returns the number of key/value pairs on the edge.
func (e *Edge) NumProperties() int { return countPairs(e.props) }

func addValue(vals []Value, val Value) []Value {
	for _, v := range vals {
		if v == val {
			return vals
		}
	}
	return append(vals, val)
}

func countPairs(m map[string][]Value) int {
	n := 0
	for _, vals := range m {
		n += len(vals)
	}
	return n
}

func sortedKeys(m map[string][]Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats summarizes a property graph the way Table 6 of the paper does.
type Stats struct {
	Vertices int
	Edges    int
	NodeKVs  int
	EdgeKVs  int
	// Labels and key counts feed the Table 2 cardinality formulas.
	EdgeLabels   int
	EdgeKeys     int
	NodeKeys     int
	EdgesWithKVs int
	// Keys is the distinct union of edge and node keys (Table 2's
	// "Distinct (eK UNION nK)").
	Keys int
	// SubjectVertices counts vertices that occur as an RDF subject
	// after transformation: those with at least one KV, one outbound
	// edge, or neither KVs nor edges (the isolated-vertex special case
	// asserts a type triple for them).
	SubjectVertices int
}

// ComputeStats derives the Table 6 / Table 2 cardinalities of the graph.
func (g *Graph) ComputeStats() Stats {
	st := Stats{Vertices: len(g.vertices), Edges: len(g.edges)}
	labels := make(map[string]struct{})
	eKeys := make(map[string]struct{})
	nKeys := make(map[string]struct{})
	g.Vertices(func(v *Vertex) bool {
		st.NodeKVs += v.NumProperties()
		for k := range v.props {
			nKeys[k] = struct{}{}
		}
		if len(v.props) > 0 || len(v.out) > 0 || len(v.in) == 0 {
			st.SubjectVertices++
		}
		return true
	})
	g.Edges(func(e *Edge) bool {
		st.EdgeKVs += e.NumProperties()
		labels[e.Label] = struct{}{}
		if len(e.props) > 0 {
			st.EdgesWithKVs++
		}
		for k := range e.props {
			eKeys[k] = struct{}{}
		}
		return true
	})
	st.EdgeLabels = len(labels)
	st.EdgeKeys = len(eKeys)
	st.NodeKeys = len(nKeys)
	union := make(map[string]struct{}, len(eKeys)+len(nKeys))
	for k := range eKeys {
		union[k] = struct{}{}
	}
	for k := range nKeys {
		union[k] = struct{}{}
	}
	st.Keys = len(union)
	return st
}

// DegreeDistribution returns histogram maps degree -> number of vertices
// with that degree, for out- and in-degrees (Figure 4 of the paper).
func (g *Graph) DegreeDistribution() (out, in map[int]int) {
	out = make(map[int]int)
	in = make(map[int]int)
	g.Vertices(func(v *Vertex) bool {
		out[len(v.out)]++
		in[len(v.in)]++
		return true
	})
	return out, in
}
