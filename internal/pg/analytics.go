package pg

import (
	"fmt"
	"math"
	"sort"
)

// In-memory graph analytics. The paper positions property-graph engines
// as "in-memory graph analysis" systems (§1: index-free adjacency); this
// file provides the representative analyses — connected components,
// PageRank, top-degree listings — so the PG model here is a usable
// analysis substrate, not just a conversion source.

// ConnectedComponents returns the weakly connected components as a map
// from vertex id to a component label (the smallest vertex id in the
// component), plus the number of components.
func (g *Graph) ConnectedComponents() (map[ID]ID, int) {
	label := make(map[ID]ID, len(g.vertices))
	var stack []ID
	count := 0
	for _, start := range g.vOrder {
		if _, seen := label[start]; seen {
			continue
		}
		if _, ok := g.vertices[start]; !ok {
			continue
		}
		count++
		root := start
		stack = append(stack[:0], start)
		label[start] = root
		var members []ID
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			vert := g.vertices[v]
			for _, eid := range vert.out {
				if e := g.edges[eid]; e != nil {
					if _, seen := label[e.Dst]; !seen {
						label[e.Dst] = root
						stack = append(stack, e.Dst)
					}
				}
			}
			for _, eid := range vert.in {
				if e := g.edges[eid]; e != nil {
					if _, seen := label[e.Src]; !seen {
						label[e.Src] = root
						stack = append(stack, e.Src)
					}
				}
			}
		}
		// Canonicalize the label to the smallest member id.
		min := members[0]
		for _, m := range members {
			if m < min {
				min = m
			}
		}
		if min != root {
			for _, m := range members {
				label[m] = min
			}
		}
	}
	return label, count
}

// PageRankOptions tune the power iteration.
type PageRankOptions struct {
	Damping    float64 // default 0.85
	Iterations int     // default 20
	Epsilon    float64 // early-stop L1 delta; default 1e-6
}

// PageRank computes PageRank over the directed edges (all labels).
func (g *Graph) PageRank(opts PageRankOptions) map[ID]float64 {
	if opts.Damping == 0 {
		opts.Damping = 0.85
	}
	if opts.Iterations == 0 {
		opts.Iterations = 20
	}
	if opts.Epsilon == 0 {
		opts.Epsilon = 1e-6
	}
	n := len(g.vertices)
	if n == 0 {
		return nil
	}
	rank := make(map[ID]float64, n)
	outDeg := make(map[ID]int, n)
	for id, v := range g.vertices {
		rank[id] = 1.0 / float64(n)
		outDeg[id] = len(v.out)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		next := make(map[ID]float64, n)
		dangling := 0.0
		for id, r := range rank {
			if outDeg[id] == 0 {
				dangling += r
			}
		}
		base := (1-opts.Damping)/float64(n) + opts.Damping*dangling/float64(n)
		for id := range rank {
			next[id] = base
		}
		for id, v := range g.vertices {
			if len(v.out) == 0 {
				continue
			}
			share := opts.Damping * rank[id] / float64(len(v.out))
			for _, eid := range v.out {
				if e := g.edges[eid]; e != nil {
					next[e.Dst] += share
				}
			}
		}
		delta := 0.0
		for id := range rank {
			delta += math.Abs(next[id] - rank[id])
		}
		rank = next
		if delta < opts.Epsilon {
			break
		}
	}
	return rank
}

// Ranked pairs a vertex with a score.
type Ranked struct {
	ID    ID
	Score float64
}

// TopPageRank returns the k highest-ranked vertices, descending.
func (g *Graph) TopPageRank(k int, opts PageRankOptions) []Ranked {
	rank := g.PageRank(opts)
	out := make([]Ranked, 0, len(rank))
	for id, score := range rank {
		out = append(out, Ranked{ID: id, Score: score})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// TopInDegree returns the k vertices with the highest in-degree.
func (g *Graph) TopInDegree(k int) []Ranked {
	out := make([]Ranked, 0, len(g.vertices))
	for id, v := range g.vertices {
		out = append(out, Ranked{ID: id, Score: float64(len(v.in))})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].ID < out[j].ID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// CountTriangles counts directed 3-cycles over edges with the given
// label ("" = any) — the in-memory equivalent of the paper's EQ12.
func (g *Graph) CountTriangles(label string) int64 {
	// adjacency sets for O(1) closure checks
	adj := make(map[ID]map[ID]struct{}, len(g.vertices))
	for _, e := range g.edges {
		if label != "" && e.Label != label {
			continue
		}
		set, ok := adj[e.Src]
		if !ok {
			set = make(map[ID]struct{})
			adj[e.Src] = set
		}
		set[e.Dst] = struct{}{}
	}
	var count int64
	for x, xs := range adj {
		for y := range xs {
			for z := range adj[y] {
				if _, closes := adj[z][x]; closes {
					count++
				}
			}
		}
	}
	return count
}

// Summary renders the analytic profile of the graph for diagnostics.
func (g *Graph) Summary() string {
	st := g.ComputeStats()
	_, comps := g.ConnectedComponents()
	return fmt.Sprintf("V=%d E=%d nodeKVs=%d edgeKVs=%d labels=%d components=%d",
		st.Vertices, st.Edges, st.NodeKVs, st.EdgeKVs, st.EdgeLabels, comps)
}
