package pg

import (
	"math"
	"math/rand"
	"testing"
)

// twoIslands builds two disconnected components: a 3-cycle {1,2,3} and
// an edge pair {10,11}.
func twoIslands(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, id := range []ID{1, 2, 3, 10, 11} {
		if _, err := g.AddVertexWithID(id); err != nil {
			t.Fatal(err)
		}
	}
	mustE := func(src, dst ID) {
		if _, err := g.AddEdge(src, dst, "follows"); err != nil {
			t.Fatal(err)
		}
	}
	mustE(1, 2)
	mustE(2, 3)
	mustE(3, 1)
	mustE(10, 11)
	return g
}

func TestConnectedComponents(t *testing.T) {
	g := twoIslands(t)
	labels, n := g.ConnectedComponents()
	if n != 2 {
		t.Fatalf("components = %d", n)
	}
	if labels[1] != labels[2] || labels[2] != labels[3] {
		t.Errorf("cycle not one component: %v", labels)
	}
	if labels[10] != labels[11] || labels[10] == labels[1] {
		t.Errorf("islands merged or split: %v", labels)
	}
	if labels[1] != 1 || labels[10] != 10 {
		t.Errorf("labels not canonicalized to min id: %v", labels)
	}
	// Isolated vertex forms its own component.
	g.AddVertexWithID(99)
	_, n = g.ConnectedComponents()
	if n != 3 {
		t.Errorf("with isolated vertex, components = %d", n)
	}
}

func TestPageRankProperties(t *testing.T) {
	g := NewGraph()
	// Star: 2..6 all point at 1.
	for id := ID(1); id <= 6; id++ {
		g.AddVertexWithID(id)
	}
	for id := ID(2); id <= 6; id++ {
		g.AddEdge(id, 1, "follows")
	}
	rank := g.PageRank(PageRankOptions{})
	// Ranks sum to ~1.
	sum := 0.0
	for _, r := range rank {
		sum += r
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("ranks sum to %f", sum)
	}
	// The hub dominates.
	for id := ID(2); id <= 6; id++ {
		if rank[1] <= rank[id] {
			t.Errorf("hub rank %f not above leaf rank %f", rank[1], rank[id])
		}
	}
	top := g.TopPageRank(1, PageRankOptions{})
	if len(top) != 1 || top[0].ID != 1 {
		t.Errorf("top = %v", top)
	}
	if g.PageRank(PageRankOptions{}) == nil {
		t.Error("non-empty graph returned nil ranks")
	}
	if NewGraph().PageRank(PageRankOptions{}) != nil {
		t.Error("empty graph should return nil")
	}
}

func TestPageRankDanglingMass(t *testing.T) {
	g := NewGraph()
	g.AddVertexWithID(1)
	g.AddVertexWithID(2)
	g.AddEdge(1, 2, "x") // 2 is dangling
	rank := g.PageRank(PageRankOptions{Iterations: 50})
	sum := rank[1] + rank[2]
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("dangling mass lost: sum = %f", sum)
	}
	if rank[2] <= rank[1] {
		t.Errorf("sink should outrank source: %v", rank)
	}
}

func TestTopInDegree(t *testing.T) {
	g := twoIslands(t)
	top := g.TopInDegree(2)
	if len(top) != 2 {
		t.Fatalf("top = %v", top)
	}
	// All of 1,2,3,11 have in-degree 1; ties break by id.
	if top[0].ID != 1 || top[0].Score != 1 {
		t.Errorf("top[0] = %+v", top[0])
	}
}

func TestCountTriangles(t *testing.T) {
	g := twoIslands(t)
	// One directed 3-cycle counted from each starting vertex = 3.
	if n := g.CountTriangles("follows"); n != 3 {
		t.Errorf("triangles = %d, want 3", n)
	}
	if n := g.CountTriangles("knows"); n != 0 {
		t.Errorf("knows triangles = %d", n)
	}
	if n := g.CountTriangles(""); n != 3 {
		t.Errorf("any-label triangles = %d", n)
	}
}

// TestTrianglesMatchNaive cross-checks the set-based counter against a
// brute-force enumeration on random graphs.
func TestTrianglesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		g := RandomGraph(rng, 12, 40)
		want := int64(0)
		type edge struct{ s, d ID }
		adj := map[edge]bool{}
		g.Edges(func(e *Edge) bool {
			adj[edge{e.Src, e.Dst}] = true
			return true
		})
		g.Vertices(func(x *Vertex) bool {
			g.Vertices(func(y *Vertex) bool {
				g.Vertices(func(z *Vertex) bool {
					if adj[edge{x.ID, y.ID}] && adj[edge{y.ID, z.ID}] && adj[edge{z.ID, x.ID}] {
						want++
					}
					return true
				})
				return true
			})
			return true
		})
		if got := g.CountTriangles(""); got != want {
			t.Fatalf("trial %d: triangles = %d, want %d", trial, got, want)
		}
	}
}

func TestSummary(t *testing.T) {
	g := twoIslands(t)
	s := g.Summary()
	if s == "" || len(s) < 10 {
		t.Errorf("summary = %q", s)
	}
}
