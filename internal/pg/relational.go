package pg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file implements the representative relational schema of §2.2 /
// Figure 3: an Edges(StartVertex, Edge, Label, EndVertex) table and an
// ObjKVs(ObjId, Key, Type, Value) table, serialized as tab-separated
// text with a header line.

// EdgeRow is one row of the Edges table.
type EdgeRow struct {
	StartVertex ID
	Edge        ID
	Label       string
	EndVertex   ID
}

// KVRow is one row of the ObjKVs table. ObjId may reference a vertex or
// an edge (shared id space).
type KVRow struct {
	ObjID ID
	Key   string
	Type  string
	Value string
}

// Relational is the two-table relational form of a property graph.
type Relational struct {
	Edges  []EdgeRow
	ObjKVs []KVRow
	// IsolatedVertices lists vertices with no KVs and no incident
	// edges, which the relational form cannot otherwise represent.
	IsolatedVertices []ID
}

// ToRelational converts the graph to the relational representation.
func (g *Graph) ToRelational() *Relational {
	r := &Relational{}
	g.Edges(func(e *Edge) bool {
		r.Edges = append(r.Edges, EdgeRow{StartVertex: e.Src, Edge: e.ID, Label: e.Label, EndVertex: e.Dst})
		for _, k := range e.Keys() {
			for _, v := range e.Values(k) {
				r.ObjKVs = append(r.ObjKVs, KVRow{ObjID: e.ID, Key: k, Type: v.RelType(), Value: v.String()})
			}
		}
		return true
	})
	g.Vertices(func(v *Vertex) bool {
		for _, k := range v.Keys() {
			for _, val := range v.Values(k) {
				r.ObjKVs = append(r.ObjKVs, KVRow{ObjID: v.ID, Key: k, Type: val.RelType(), Value: val.String()})
			}
		}
		if v.NumProperties() == 0 && len(v.out) == 0 && len(v.in) == 0 {
			r.IsolatedVertices = append(r.IsolatedVertices, v.ID)
		}
		return true
	})
	sort.Slice(r.IsolatedVertices, func(i, j int) bool { return r.IsolatedVertices[i] < r.IsolatedVertices[j] })
	return r
}

// FromRelational reconstructs a property graph from relational form.
// Vertices are created implicitly from edge endpoints and vertex KV rows
// (a KV row whose ObjId is not an edge id denotes a vertex).
func FromRelational(r *Relational) (*Graph, error) {
	g := NewGraph()
	edgeIDs := make(map[ID]struct{}, len(r.Edges))
	for _, e := range r.Edges {
		edgeIDs[e.Edge] = struct{}{}
	}
	ensureVertex := func(id ID) error {
		if g.Vertex(id) != nil {
			return nil
		}
		_, err := g.AddVertexWithID(id)
		return err
	}
	for _, e := range r.Edges {
		if err := ensureVertex(e.StartVertex); err != nil {
			return nil, err
		}
		if err := ensureVertex(e.EndVertex); err != nil {
			return nil, err
		}
	}
	for _, e := range r.Edges {
		if _, err := g.AddEdgeWithID(e.Edge, e.StartVertex, e.EndVertex, e.Label); err != nil {
			return nil, err
		}
	}
	for _, id := range r.IsolatedVertices {
		if err := ensureVertex(id); err != nil {
			return nil, err
		}
	}
	for _, kv := range r.ObjKVs {
		val, err := ParseValue(kv.Type, kv.Value)
		if err != nil {
			return nil, fmt.Errorf("pg: ObjKVs row for %d/%s: %w", kv.ObjID, kv.Key, err)
		}
		if _, isEdge := edgeIDs[kv.ObjID]; isEdge {
			g.Edge(kv.ObjID).AddProperty(kv.Key, val)
			continue
		}
		if err := ensureVertex(kv.ObjID); err != nil {
			return nil, err
		}
		g.Vertex(kv.ObjID).AddProperty(kv.Key, val)
	}
	return g, nil
}

// ParseValue parses a relational (Type, Value) pair into a typed Value.
func ParseValue(relType, raw string) (Value, error) {
	switch strings.ToUpper(relType) {
	case "", "VARCHAR", "VARCHAR2", "STRING", "CHAR":
		return S(raw), nil
	case "NUMBER", "INT", "INTEGER":
		i, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(raw, 64)
			if ferr != nil {
				return Value{}, fmt.Errorf("bad NUMBER %q", raw)
			}
			return F(f), nil
		}
		return I(i), nil
	case "DOUBLE", "FLOAT":
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad DOUBLE %q", raw)
		}
		return F(f), nil
	case "BOOLEAN", "BOOL":
		switch strings.ToLower(raw) {
		case "true", "1":
			return B(true), nil
		case "false", "0":
			return B(false), nil
		}
		return Value{}, fmt.Errorf("bad BOOLEAN %q", raw)
	default:
		return Value{}, fmt.Errorf("unsupported relational type %q", relType)
	}
}

// WriteEdges serializes the Edges table as TSV with a header.
func (r *Relational) WriteEdges(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "StartVertex\tEdge\tLabel\tEndVertex"); err != nil {
		return err
	}
	for _, e := range r.Edges {
		if strings.ContainsAny(e.Label, "\t\n") {
			return fmt.Errorf("pg: label %q contains a TSV delimiter", e.Label)
		}
		if _, err := fmt.Fprintf(bw, "%d\t%d\t%s\t%d\n", e.StartVertex, e.Edge, e.Label, e.EndVertex); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteObjKVs serializes the ObjKVs table as TSV with a header.
func (r *Relational) WriteObjKVs(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "ObjId\tKey\tType\tValue"); err != nil {
		return err
	}
	for _, kv := range r.ObjKVs {
		if strings.ContainsAny(kv.Key, "\t\n") || strings.ContainsAny(kv.Value, "\t\n") {
			return fmt.Errorf("pg: KV row %d/%s contains a TSV delimiter", kv.ObjID, kv.Key)
		}
		if _, err := fmt.Fprintf(bw, "%d\t%s\t%s\t%s\n", kv.ObjID, kv.Key, kv.Type, kv.Value); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdges parses an Edges TSV table.
func ReadEdges(rd io.Reader) ([]EdgeRow, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rows []EdgeRow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if line == 1 || text == "" {
			continue // header / blank
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("pg: edges line %d: want 4 columns, got %d", line, len(parts))
		}
		sv, err1 := strconv.ParseInt(parts[0], 10, 64)
		eid, err2 := strconv.ParseInt(parts[1], 10, 64)
		ev, err3 := strconv.ParseInt(parts[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("pg: edges line %d: bad id", line)
		}
		rows = append(rows, EdgeRow{StartVertex: ID(sv), Edge: ID(eid), Label: parts[2], EndVertex: ID(ev)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// ReadObjKVs parses an ObjKVs TSV table.
func ReadObjKVs(rd io.Reader) ([]KVRow, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var rows []KVRow
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimRight(sc.Text(), "\r")
		if line == 1 || text == "" {
			continue
		}
		parts := strings.Split(text, "\t")
		if len(parts) != 4 {
			return nil, fmt.Errorf("pg: objkvs line %d: want 4 columns, got %d", line, len(parts))
		}
		id, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("pg: objkvs line %d: bad id", line)
		}
		rows = append(rows, KVRow{ObjID: ID(id), Key: parts[1], Type: parts[2], Value: parts[3]})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}
