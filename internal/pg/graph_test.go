package pg

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

// figure1 builds the paper's Figure 1 sample graph.
func figure1(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	v1, err := g.AddVertexWithID(1)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := g.AddVertexWithID(2)
	if err != nil {
		t.Fatal(err)
	}
	v1.SetProperty("name", S("Amy"))
	v1.SetProperty("age", I(23))
	v2.SetProperty("name", S("Mira"))
	v2.SetProperty("age", I(22))
	e3, err := g.AddEdgeWithID(3, 1, 2, "follows")
	if err != nil {
		t.Fatal(err)
	}
	e3.SetProperty("since", I(2007))
	e4, err := g.AddEdgeWithID(4, 1, 2, "knows")
	if err != nil {
		t.Fatal(err)
	}
	e4.SetProperty("firstMetAt", S("MIT"))
	return g
}

func TestFigure1Construction(t *testing.T) {
	g := figure1(t)
	if g.NumVertices() != 2 || g.NumEdges() != 2 {
		t.Fatalf("V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
	name, ok := g.Vertex(1).Property("name")
	if !ok || name.Str != "Amy" {
		t.Errorf("v1 name = %v", name)
	}
	since, ok := g.Edge(3).Property("since")
	if !ok || since.Int != 2007 {
		t.Errorf("e3 since = %v", since)
	}
	if out := g.OutEdges(1); len(out) != 2 {
		t.Errorf("out edges of v1 = %d", len(out))
	}
	if in := g.InEdges(2); len(in) != 2 {
		t.Errorf("in edges of v2 = %d", len(in))
	}
	if g.Edge(3).Label != "follows" || g.Edge(4).Label != "knows" {
		t.Error("labels wrong")
	}
}

func TestSharedIDSpace(t *testing.T) {
	g := figure1(t)
	if _, err := g.AddVertexWithID(3); err == nil {
		t.Error("vertex reusing edge id accepted")
	}
	if _, err := g.AddEdgeWithID(1, 1, 2, "x"); err == nil {
		t.Error("edge reusing vertex id accepted")
	}
	v := g.AddVertex()
	if v.ID != 5 {
		t.Errorf("auto id = %d, want 5", v.ID)
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph()
	g.AddVertexWithID(1)
	if _, err := g.AddEdge(1, 99, "x"); err == nil {
		t.Error("edge to missing vertex accepted")
	}
	if _, err := g.AddEdge(99, 1, "x"); err == nil {
		t.Error("edge from missing vertex accepted")
	}
	if _, err := g.AddEdge(1, 1, ""); err == nil {
		t.Error("empty label accepted")
	}
	if _, err := g.AddVertexWithID(0); err == nil {
		t.Error("zero vertex id accepted")
	}
	if _, err := g.AddEdgeWithID(-1, 1, 1, "x"); err == nil {
		t.Error("negative edge id accepted")
	}
}

func TestRemove(t *testing.T) {
	g := figure1(t)
	if err := g.RemoveEdge(3); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Edge(3) != nil {
		t.Error("edge not removed")
	}
	if len(g.OutEdges(1)) != 1 {
		t.Error("adjacency not updated")
	}
	if err := g.RemoveEdge(3); err == nil {
		t.Error("double remove succeeded")
	}
	if err := g.RemoveVertex(2); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1 || g.NumEdges() != 0 {
		t.Errorf("V=%d E=%d after vertex removal", g.NumVertices(), g.NumEdges())
	}
	if err := g.RemoveVertex(2); err == nil {
		t.Error("double vertex remove succeeded")
	}
}

func TestProperties(t *testing.T) {
	g := figure1(t)
	v := g.Vertex(1)
	if keys := v.Keys(); !reflect.DeepEqual(keys, []string{"age", "name"}) {
		t.Errorf("keys = %v", keys)
	}
	v.RemoveProperty("age")
	if _, ok := v.Property("age"); ok {
		t.Error("property not removed")
	}
	if v.NumProperties() != 1 {
		t.Errorf("props = %d", v.NumProperties())
	}
	e := g.Edge(4)
	e.SetProperty("weight", F(0.5))
	if w, ok := e.Property("weight"); !ok || w.Float != 0.5 {
		t.Errorf("edge prop = %v", w)
	}
	e.RemoveProperty("weight")
	if e.NumProperties() != 1 {
		t.Errorf("edge props = %d", e.NumProperties())
	}
}

func TestMultiValuedProperties(t *testing.T) {
	g := NewGraph()
	v, _ := g.AddVertexWithID(1)
	v.AddProperty("hasTag", S("#a"))
	v.AddProperty("hasTag", S("#b"))
	v.AddProperty("hasTag", S("#a")) // set semantics: duplicate ignored
	if vals := v.Values("hasTag"); len(vals) != 2 {
		t.Fatalf("values = %v", vals)
	}
	if v.NumProperties() != 2 {
		t.Errorf("NumProperties = %d", v.NumProperties())
	}
	if first, ok := v.Property("hasTag"); !ok || first.Str != "#a" {
		t.Errorf("first value = %v", first)
	}
	v.SetProperty("hasTag", S("#only"))
	if vals := v.Values("hasTag"); len(vals) != 1 || vals[0].Str != "#only" {
		t.Errorf("SetProperty should replace: %v", vals)
	}
	// Multi-valued KVs round-trip through the relational form.
	v.AddProperty("hasTag", S("#second"))
	g2, err := FromRelational(g.ToRelational())
	if err != nil {
		t.Fatal(err)
	}
	if vals := g2.Vertex(1).Values("hasTag"); len(vals) != 2 {
		t.Errorf("relational round-trip values = %v", vals)
	}
	st := g.ComputeStats()
	if st.NodeKVs != 2 {
		t.Errorf("NodeKVs = %d (pairs, not keys)", st.NodeKVs)
	}
}

func TestValueHelpers(t *testing.T) {
	cases := []struct {
		v       Value
		str     string
		relType string
	}{
		{S("Amy"), "Amy", "VARCHAR"},
		{I(23), "23", "NUMBER"},
		{F(2.5), "2.5", "DOUBLE"},
		{B(true), "true", "BOOLEAN"},
	}
	for _, c := range cases {
		if c.v.String() != c.str {
			t.Errorf("String() = %q want %q", c.v.String(), c.str)
		}
		if c.v.RelType() != c.relType {
			t.Errorf("RelType() = %q want %q", c.v.RelType(), c.relType)
		}
	}
}

func TestComputeStats(t *testing.T) {
	g := figure1(t)
	st := g.ComputeStats()
	want := Stats{
		Vertices: 2, Edges: 2, NodeKVs: 4, EdgeKVs: 2,
		EdgeLabels: 2, EdgeKeys: 2, NodeKeys: 2, EdgesWithKVs: 2,
		Keys: 4, SubjectVertices: 2,
	}
	if st != want {
		t.Errorf("stats = %+v, want %+v", st, want)
	}
}

func TestDegreeDistribution(t *testing.T) {
	g := figure1(t)
	out, in := g.DegreeDistribution()
	if out[2] != 1 || out[0] != 1 {
		t.Errorf("out = %v", out)
	}
	if in[2] != 1 || in[0] != 1 {
		t.Errorf("in = %v", in)
	}
}

func TestIterationEarlyStop(t *testing.T) {
	g := figure1(t)
	n := 0
	g.Vertices(func(*Vertex) bool { n++; return false })
	if n != 1 {
		t.Errorf("vertex early stop visited %d", n)
	}
	n = 0
	g.Edges(func(*Edge) bool { n++; return false })
	if n != 1 {
		t.Errorf("edge early stop visited %d", n)
	}
}

func TestToRelationalMatchesFigure3(t *testing.T) {
	g := figure1(t)
	r := g.ToRelational()
	if len(r.Edges) != 2 {
		t.Fatalf("edge rows = %d", len(r.Edges))
	}
	if r.Edges[0] != (EdgeRow{StartVertex: 1, Edge: 3, Label: "follows", EndVertex: 2}) {
		t.Errorf("edge row = %+v", r.Edges[0])
	}
	if len(r.ObjKVs) != 6 {
		t.Fatalf("kv rows = %d", len(r.ObjKVs))
	}
	// The since KV row must carry NUMBER type, as in Figure 3.
	found := false
	for _, kv := range r.ObjKVs {
		if kv.ObjID == 3 && kv.Key == "since" {
			found = true
			if kv.Type != "NUMBER" || kv.Value != "2007" {
				t.Errorf("since row = %+v", kv)
			}
		}
	}
	if !found {
		t.Error("since KV row missing")
	}
}

func TestRelationalRoundTrip(t *testing.T) {
	g := figure1(t)
	g.AddVertexWithID(10) // isolated vertex special case
	r := g.ToRelational()
	if len(r.IsolatedVertices) != 1 || r.IsolatedVertices[0] != 10 {
		t.Fatalf("isolated = %v", r.IsolatedVertices)
	}
	g2, err := FromRelational(r)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestRelationalTSVRoundTrip(t *testing.T) {
	g := figure1(t)
	r := g.ToRelational()
	var eb, kb bytes.Buffer
	if err := r.WriteEdges(&eb); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteObjKVs(&kb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(eb.String(), "StartVertex\tEdge\tLabel\tEndVertex\n") {
		t.Errorf("edges header: %q", eb.String()[:40])
	}
	edges, err := ReadEdges(&eb)
	if err != nil {
		t.Fatal(err)
	}
	kvs, err := ReadObjKVs(&kb)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromRelational(&Relational{Edges: edges, ObjKVs: kvs})
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, g2)
}

func TestReadEdgesErrors(t *testing.T) {
	if _, err := ReadEdges(strings.NewReader("h\n1\t2\t3\n")); err == nil {
		t.Error("short row accepted")
	}
	if _, err := ReadEdges(strings.NewReader("h\nx\t2\tfollows\t3\n")); err == nil {
		t.Error("bad id accepted")
	}
	if _, err := ReadObjKVs(strings.NewReader("h\n1\tk\n")); err == nil {
		t.Error("short kv row accepted")
	}
	if _, err := ReadObjKVs(strings.NewReader("h\nx\tk\tVARCHAR\tv\n")); err == nil {
		t.Error("bad kv id accepted")
	}
}

func TestParseValue(t *testing.T) {
	if v, err := ParseValue("NUMBER", "42"); err != nil || v.Int != 42 {
		t.Errorf("NUMBER: %v %v", v, err)
	}
	if v, err := ParseValue("NUMBER", "2.5"); err != nil || v.Float != 2.5 {
		t.Errorf("NUMBER float: %v %v", v, err)
	}
	if _, err := ParseValue("NUMBER", "abc"); err == nil {
		t.Error("bad NUMBER accepted")
	}
	if _, err := ParseValue("BLOB", "x"); err == nil {
		t.Error("unknown type accepted")
	}
	if v, err := ParseValue("BOOLEAN", "true"); err != nil || !v.Bool {
		t.Errorf("BOOLEAN: %v %v", v, err)
	}
}

func assertGraphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: V %d/%d E %d/%d", a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	a.Vertices(func(v *Vertex) bool {
		w := b.Vertex(v.ID)
		if w == nil {
			t.Fatalf("vertex %d missing", v.ID)
		}
		if !reflect.DeepEqual(v.props, w.props) {
			t.Fatalf("vertex %d props differ: %v vs %v", v.ID, v.props, w.props)
		}
		return true
	})
	a.Edges(func(e *Edge) bool {
		f := b.Edge(e.ID)
		if f == nil {
			t.Fatalf("edge %d missing", e.ID)
		}
		if e.Label != f.Label || e.Src != f.Src || e.Dst != f.Dst || !reflect.DeepEqual(e.props, f.props) {
			t.Fatalf("edge %d differs", e.ID)
		}
		return true
	})
}

// RandomGraph builds a random property graph for property-based tests.
func RandomGraph(rng *rand.Rand, nV, nE int) *Graph {
	g := NewGraph()
	ids := make([]ID, 0, nV)
	for i := 0; i < nV; i++ {
		v := g.AddVertex()
		ids = append(ids, v.ID)
		for k := 0; k < rng.Intn(4); k++ {
			v.SetProperty(fmt.Sprintf("k%d", rng.Intn(6)), randomValue(rng))
		}
	}
	labels := []string{"follows", "knows", "likes"}
	for i := 0; i < nE && nV > 0; i++ {
		src := ids[rng.Intn(len(ids))]
		dst := ids[rng.Intn(len(ids))]
		e, err := g.AddEdge(src, dst, labels[rng.Intn(len(labels))])
		if err != nil {
			panic(err)
		}
		for k := 0; k < rng.Intn(3); k++ {
			e.SetProperty(fmt.Sprintf("k%d", rng.Intn(6)), randomValue(rng))
		}
	}
	return g
}

func randomValue(rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return I(rng.Int63n(1000))
	case 1:
		return F(float64(rng.Intn(100)) / 4)
	case 2:
		return B(rng.Intn(2) == 0)
	default:
		return S(fmt.Sprintf("val%d", rng.Intn(50)))
	}
}

// TestRelationalRoundTripRandom is part of invariant 1: PG -> relational
// -> PG is lossless on random graphs.
func TestRelationalRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		g := RandomGraph(rng, 1+rng.Intn(30), rng.Intn(60))
		g2, err := FromRelational(g.ToRelational())
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertGraphsEqual(t, g, g2)
	}
}
