// Package pgrdf implements the paper's contribution: transforming
// property graphs into RDF so that an RDF store can serve as a property
// graph backend, queryable with standard SPARQL.
//
// Three PG-as-RDF models are implemented (§2, Table 1):
//
//   - RF: (extended) reification — each edge b-i-r-d becomes the triples
//     -e-rdf:subject-s, -e-rdf:predicate-p, -e-rdf:object-o plus the
//     explicitly asserted -s-p-o;
//   - NG: named graphs — each edge becomes a single quad e-s-p-o, and
//     the edge's KV triples are clustered into the named graph e;
//   - SP: subproperties — each edge becomes -s-e-o plus
//     -e-rdfs:subPropertyOf-p plus the asserted -s-p-o.
//
// Node KVs are -n-K-V triples in all models; edge KVs are -e-K-V
// triples (quads e-e-K-V in NG). A vertex with no KVs and no incident
// edges is represented as -v-rdf:type-rdf:Resource in every model.
package pgrdf

import (
	"fmt"

	"repro/internal/pg"
	"repro/internal/rdf"
)

// Scheme selects a PG-as-RDF model.
type Scheme int

// The three PG-as-RDF models of §2.3.
const (
	RF Scheme = iota // (extended) reification based
	NG               // named graph based
	SP               // subproperty based
)

func (s Scheme) String() string {
	switch s {
	case RF:
		return "RF"
	case NG:
		return "NG"
	case SP:
		return "SP"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Schemes lists all three models.
var Schemes = []Scheme{RF, NG, SP}

// Vocabulary controls IRI generation (§2.2): vertex ids map into the
// vertex namespace, edge ids into the edge namespace, labels into the
// relationship namespace and keys into the key namespace.
type Vocabulary struct {
	VertexNS     string // default http://pg/
	VertexPrefix string // default "v" (the Twitter dataset uses "n")
	EdgeNS       string // default http://pg/
	EdgePrefix   string // default "e"
	RelNS        string // default http://pg/r/
	KeyNS        string // default http://pg/k/
}

// DefaultVocabulary returns the paper's §2.2 vocabulary.
func DefaultVocabulary() Vocabulary {
	return Vocabulary{
		VertexNS:     rdf.PGNS,
		VertexPrefix: "v",
		EdgeNS:       rdf.PGNS,
		EdgePrefix:   "e",
		RelNS:        rdf.RelNS,
		KeyNS:        rdf.KeyNS,
	}
}

// VertexIRI maps a vertex id to its IRI (e.g. 1 -> <http://pg/v1>).
func (v Vocabulary) VertexIRI(id pg.ID) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%s%s%d", v.VertexNS, v.VertexPrefix, id))
}

// EdgeIRI maps an edge id to its IRI (e.g. 3 -> <http://pg/e3>).
func (v Vocabulary) EdgeIRI(id pg.ID) rdf.Term {
	return rdf.NewIRI(fmt.Sprintf("%s%s%d", v.EdgeNS, v.EdgePrefix, id))
}

// LabelIRI maps an edge label to its relationship IRI.
func (v Vocabulary) LabelIRI(label string) rdf.Term {
	return rdf.NewIRI(v.RelNS + label)
}

// KeyIRI maps a property key to its predicate IRI. No distinction is
// made between edge and node keys (§2.2).
func (v Vocabulary) KeyIRI(key string) rdf.Term {
	return rdf.NewIRI(v.KeyNS + key)
}

// ValueLiteral maps a property value to an RDF literal with an xsd
// datatype (§2.2, e.g. 23 -> "23"^^xsd:int).
func ValueLiteral(val pg.Value) rdf.Term {
	switch val.Kind {
	case pg.KindInt:
		if val.Int >= -1<<31 && val.Int < 1<<31 {
			return rdf.NewInt(int32(val.Int))
		}
		return rdf.NewInteger(val.Int)
	case pg.KindFloat:
		return rdf.NewDouble(val.Float)
	case pg.KindBool:
		return rdf.NewBoolean(val.Bool)
	default:
		return rdf.NewLiteral(val.Str)
	}
}

// Options tune the transformation.
type Options struct {
	// ExplicitSPO asserts the derivable -s-p-o triple in the RF and SP
	// models (§2 Discussion), allowing plain `?x rel:follows ?y`
	// patterns. Disabling it is the paper's implied storage
	// optimization, at the cost of query rewriting. Default true.
	ExplicitSPO bool
	// SingleTripleWhenNoKVs represents an edge without KVs as just the
	// -s-p-o triple (the optimization Table 2's note mentions but does
	// not account for). Default false, matching the paper's accounting.
	SingleTripleWhenNoKVs bool
}

// DefaultOptions matches the paper's accounting.
func DefaultOptions() Options { return Options{ExplicitSPO: true} }

// Dataset is the transformed RDF, split into the three partitions of
// §3.2: topology, node-KV triples and edge-KV triples (the SP model's
// -s-e-o and -e-sPO-p anchors live in the edge-KV partition, per §3.2).
type Dataset struct {
	Scheme   Scheme
	Topology []rdf.Quad
	NodeKV   []rdf.Quad
	EdgeKV   []rdf.Quad
}

// All returns every quad of the dataset (topology first).
func (d *Dataset) All() []rdf.Quad {
	out := make([]rdf.Quad, 0, len(d.Topology)+len(d.NodeKV)+len(d.EdgeKV))
	out = append(out, d.Topology...)
	out = append(out, d.NodeKV...)
	out = append(out, d.EdgeKV...)
	return out
}

// Len returns the total number of quads.
func (d *Dataset) Len() int { return len(d.Topology) + len(d.NodeKV) + len(d.EdgeKV) }

// Converter transforms property graphs to RDF under one scheme.
type Converter struct {
	Scheme Scheme
	Vocab  Vocabulary
	Opts   Options
}

// NewConverter returns a converter with the default vocabulary/options.
func NewConverter(s Scheme) *Converter {
	return &Converter{Scheme: s, Vocab: DefaultVocabulary(), Opts: DefaultOptions()}
}

// Convert transforms the graph. The emitted quads follow Table 1
// exactly; see the package comment for the per-scheme shapes.
func (c *Converter) Convert(g *pg.Graph) *Dataset {
	ds := &Dataset{Scheme: c.Scheme}
	rdfType := rdf.NewIRI(rdf.RDFType)
	rdfResource := rdf.NewIRI(rdf.RDFSResource)

	g.Edges(func(e *pg.Edge) bool {
		s := c.Vocab.VertexIRI(e.Src)
		o := c.Vocab.VertexIRI(e.Dst)
		p := c.Vocab.LabelIRI(e.Label)
		eIRI := c.Vocab.EdgeIRI(e.ID)
		noKVs := e.NumProperties() == 0

		if c.Opts.SingleTripleWhenNoKVs && noKVs {
			ds.Topology = append(ds.Topology, rdf.Quad{S: s, P: p, O: o})
			return true
		}

		switch c.Scheme {
		case RF:
			ds.EdgeKV = append(ds.EdgeKV,
				rdf.Quad{S: eIRI, P: rdf.NewIRI(rdf.RDFSubject), O: s},
				rdf.Quad{S: eIRI, P: rdf.NewIRI(rdf.RDFPredicate), O: p},
				rdf.Quad{S: eIRI, P: rdf.NewIRI(rdf.RDFObject), O: o},
			)
			if c.Opts.ExplicitSPO {
				ds.Topology = append(ds.Topology, rdf.Quad{S: s, P: p, O: o})
			}
		case NG:
			ds.Topology = append(ds.Topology, rdf.NewQuad(s, p, o, eIRI))
		case SP:
			ds.EdgeKV = append(ds.EdgeKV,
				rdf.Quad{S: s, P: eIRI, O: o},
				rdf.Quad{S: eIRI, P: rdf.NewIRI(rdf.RDFSSubPropertyOf), O: p},
			)
			if c.Opts.ExplicitSPO {
				ds.Topology = append(ds.Topology, rdf.Quad{S: s, P: p, O: o})
			}
		}

		for _, key := range e.Keys() {
			for _, val := range e.Values(key) {
				kv := rdf.Quad{S: eIRI, P: c.Vocab.KeyIRI(key), O: ValueLiteral(val)}
				if c.Scheme == NG {
					// Cluster edge KVs into the edge's named graph (§2).
					kv.G = eIRI
				}
				ds.EdgeKV = append(ds.EdgeKV, kv)
			}
		}
		return true
	})

	g.Vertices(func(v *pg.Vertex) bool {
		n := c.Vocab.VertexIRI(v.ID)
		for _, key := range v.Keys() {
			for _, val := range v.Values(key) {
				ds.NodeKV = append(ds.NodeKV, rdf.Quad{S: n, P: c.Vocab.KeyIRI(key), O: ValueLiteral(val)})
			}
		}
		// Special case (§2.3): isolated vertex with no KVs.
		if v.NumProperties() == 0 && len(g.OutEdges(v.ID)) == 0 && len(g.InEdges(v.ID)) == 0 {
			ds.Topology = append(ds.Topology, rdf.Quad{S: n, P: rdfType, O: rdfResource})
		}
		return true
	})
	return ds
}
