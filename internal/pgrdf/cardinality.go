package pgrdf

import (
	"repro/internal/pg"
	"repro/internal/rdf"
)

// Cardinalities mirrors Table 2: the predicted characteristics of the
// RDF dataset generated from a property graph under one PG-as-RDF model.
type Cardinalities struct {
	// NamedGraphs is the number of distinct named graphs (E for NG, 0
	// otherwise).
	NamedGraphs int
	// ObjPropQuads is the count of object-property triples/quads that
	// encode topology edges: 4*E (RF), E (NG), 3*E (SP).
	ObjPropQuads int
	// DataPropTriples is eKV + nKV in every model.
	DataPropTriples int
	// DistinctSubjects is the distinct subject count: V' + E for RF and
	// SP (every edge IRI occurs as a subject), V' + E1 for NG (only
	// edges with at least one KV), where V' counts vertices that occur
	// as subjects.
	DistinctSubjects int
	// DistinctObjProps is the distinct object-property count: eL+3
	// (RF adds rdf:subject/predicate/object), eL (NG), eL+E+1 (SP adds
	// one property per edge plus rdfs:subPropertyOf).
	DistinctObjProps int
	// DistinctDataProps is distinct(eK UNION nK) in every model.
	DistinctDataProps int
}

// PredictCardinalities evaluates the Table 2 formulas on a property
// graph's statistics. The formulas assume the paper's default options
// (explicit -s-p-o, no single-triple optimization).
func PredictCardinalities(st pg.Stats, scheme Scheme) Cardinalities {
	c := Cardinalities{
		DataPropTriples:   st.EdgeKVs + st.NodeKVs,
		DistinctDataProps: st.Keys,
	}
	switch scheme {
	case RF:
		c.ObjPropQuads = 4 * st.Edges
		c.DistinctSubjects = st.SubjectVertices + st.Edges
		c.DistinctObjProps = st.EdgeLabels + 3
	case NG:
		c.NamedGraphs = st.Edges
		c.ObjPropQuads = st.Edges
		c.DistinctSubjects = st.SubjectVertices + st.EdgesWithKVs
		c.DistinctObjProps = st.EdgeLabels
	case SP:
		c.ObjPropQuads = 3 * st.Edges
		c.DistinctSubjects = st.SubjectVertices + st.Edges
		c.DistinctObjProps = st.EdgeLabels + st.Edges + 1
	}
	return c
}

// MeasureCardinalities computes the actual Table 2 quantities from a
// generated dataset, for validating the predictor (invariant 3) and for
// reporting Tables 7 and 8.
func MeasureCardinalities(ds *Dataset) Cardinalities {
	var c Cardinalities
	graphs := make(map[string]struct{})
	subjects := make(map[string]struct{})
	objProps := make(map[string]struct{})
	dataProps := make(map[string]struct{})
	for _, q := range ds.All() {
		subjects[q.S.String()] = struct{}{}
		if !q.G.IsZero() {
			graphs[q.G.String()] = struct{}{}
		}
		if q.P.Value == rdf.RDFType {
			continue // isolated-vertex typing is outside Table 2
		}
		if q.O.IsLiteral() {
			c.DataPropTriples++
			dataProps[q.P.Value] = struct{}{}
		} else {
			c.ObjPropQuads++
			objProps[q.P.Value] = struct{}{}
		}
	}
	c.NamedGraphs = len(graphs)
	c.DistinctSubjects = len(subjects)
	c.DistinctObjProps = len(objProps)
	c.DistinctDataProps = len(dataProps)
	return c
}

// TripleCounts mirrors Table 7: per-label topology triples and per-key
// KV triple counts for a transformed dataset.
type TripleCounts struct {
	ByLabel map[string]int // topology edges per label
	ByKey   map[string]int // KV triples per key (node + edge)
	Total   int            // total triples/quads in the dataset
}

// CountTriples computes Table 7 quantities from a dataset using the
// converter's vocabulary to recognize label and key predicates.
func CountTriples(ds *Dataset, vocab Vocabulary) TripleCounts {
	tc := TripleCounts{ByLabel: make(map[string]int), ByKey: make(map[string]int), Total: ds.Len()}
	count := func(q rdf.Quad) {
		p := q.P.Value
		if len(p) > len(vocab.RelNS) && p[:len(vocab.RelNS)] == vocab.RelNS && q.O.IsResource() {
			tc.ByLabel[p[len(vocab.RelNS):]]++
		}
		if len(p) > len(vocab.KeyNS) && p[:len(vocab.KeyNS)] == vocab.KeyNS {
			tc.ByKey[p[len(vocab.KeyNS):]]++
		}
	}
	for _, q := range ds.Topology {
		count(q)
	}
	for _, q := range ds.NodeKV {
		count(q)
	}
	for _, q := range ds.EdgeKV {
		count(q)
	}
	return tc
}
