package pgrdf

import (
	"fmt"
	"strings"
)

// QueryBuilder formulates SPARQL graph patterns for property graph
// queries under a PG-as-RDF model, implementing the rules of §2.3:
//
//  1. edge access without edge-KVs uses the plain -s-p-o / e-s-p-o
//     pattern (identical across models);
//  2. edge access WITH edge-KVs uses the model-specific pattern group
//     to reach the edge resource first;
//  3. node-KV access with an unbound key excludes topology edges with
//     FILTER isLiteral; unbound-label edge access excludes KVs with
//     FILTER isIRI.
type QueryBuilder struct {
	Scheme Scheme
	Vocab  Vocabulary
}

// NewQueryBuilder returns a builder for a scheme with the default
// vocabulary.
func NewQueryBuilder(s Scheme) *QueryBuilder {
	return &QueryBuilder{Scheme: s, Vocab: DefaultVocabulary()}
}

// Prologue returns the PREFIX declarations for the builder's vocabulary.
func (qb *QueryBuilder) Prologue() string {
	return fmt.Sprintf(`PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>
PREFIX rel: <%s>
PREFIX key: <%s>
`, qb.Vocab.RelNS, qb.Vocab.KeyNS)
}

// EdgePattern returns a pattern matching an edge with the given label
// between ?src and ?dst (rule 1a: no edge-KV access — identical in all
// models thanks to the asserted -s-p-o / e-s-p-o).
func (qb *QueryBuilder) EdgePattern(src, dst, label string) string {
	return fmt.Sprintf("?%s rel:%s ?%s .", src, label, dst)
}

// AnyEdgePattern returns a pattern matching any topology edge,
// excluding KV triples with FILTER isIRI (rule 1b).
func (qb *QueryBuilder) AnyEdgePattern(src, pred, dst string) string {
	return fmt.Sprintf("?%s ?%s ?%s FILTER (isIRI(?%s)) .", src, pred, dst, dst)
}

// EdgeKVPattern returns the model-specific pattern group that matches an
// edge with the given label between ?src and ?dst and binds the edge
// resource to ?edge together with its key/value pairs ?key/?val
// (rule 2; the Q2 patterns of Table 3).
func (qb *QueryBuilder) EdgeKVPattern(src, dst, edge, label, key, val string) string {
	switch qb.Scheme {
	case RF:
		return fmt.Sprintf(
			"?%[3]s rdf:subject ?%[1]s ; rdf:predicate rel:%[4]s ; rdf:object ?%[2]s . ?%[3]s ?%[5]s ?%[6]s FILTER (isLiteral(?%[6]s)) .",
			src, dst, edge, label, key, val)
	case NG:
		return fmt.Sprintf(
			"GRAPH ?%[3]s { ?%[1]s rel:%[4]s ?%[2]s . ?%[3]s ?%[5]s ?%[6]s FILTER (isLiteral(?%[6]s)) }",
			src, dst, edge, label, key, val)
	default: // SP
		return fmt.Sprintf(
			"?%[1]s ?%[3]s ?%[2]s . ?%[3]s rdfs:subPropertyOf rel:%[4]s . ?%[3]s ?%[5]s ?%[6]s FILTER (isLiteral(?%[6]s)) .",
			src, dst, edge, label, key, val)
	}
}

// EdgeBoundKVPattern is like EdgeKVPattern but for a single bound key:
// it binds only ?val for the given key (e.g. "who follows whom since
// when" from §2.1).
func (qb *QueryBuilder) EdgeBoundKVPattern(src, dst, edge, label, key, val string) string {
	switch qb.Scheme {
	case RF:
		return fmt.Sprintf(
			"?%[3]s rdf:subject ?%[1]s ; rdf:predicate rel:%[4]s ; rdf:object ?%[2]s . ?%[3]s key:%[5]s ?%[6]s .",
			src, dst, edge, label, key, val)
	case NG:
		return fmt.Sprintf(
			"GRAPH ?%[3]s { ?%[1]s rel:%[4]s ?%[2]s . ?%[3]s key:%[5]s ?%[6]s }",
			src, dst, edge, label, key, val)
	default: // SP
		return fmt.Sprintf(
			"?%[1]s ?%[3]s ?%[2]s . ?%[3]s rdfs:subPropertyOf rel:%[4]s . ?%[3]s key:%[5]s ?%[6]s .",
			src, dst, edge, label, key, val)
	}
}

// NodeKVPattern returns a pattern matching ?node having the given key
// bound to ?val (rule 3a).
func (qb *QueryBuilder) NodeKVPattern(node, key, val string) string {
	return fmt.Sprintf("?%s key:%s ?%s .", node, key, val)
}

// NodeBoundKVPattern matches ?node having key = the given literal value
// (e.g. name = "Amy").
func (qb *QueryBuilder) NodeBoundKVPattern(node, key, lit string) string {
	return fmt.Sprintf("?%s key:%s %s .", node, key, lit)
}

// AllNodeKVsPattern matches every KV of ?node, excluding outbound
// topology edges with FILTER isLiteral (rule 3b; Q3 of Table 3).
func (qb *QueryBuilder) AllNodeKVsPattern(node, key, val string) string {
	return fmt.Sprintf("?%s ?%s ?%s FILTER (isLiteral(?%s)) .", node, key, val, val)
}

// TrianglePattern returns the Q1 triangle pattern (three-edge cycles).
func (qb *QueryBuilder) TrianglePattern(label string) string {
	return fmt.Sprintf("?x rel:%[1]s ?y . ?y rel:%[1]s ?z . ?z rel:%[1]s ?x .", label)
}

// Select assembles a full SELECT query from projection variables and
// pattern fragments.
func (qb *QueryBuilder) Select(vars []string, patterns ...string) string {
	proj := make([]string, len(vars))
	for i, v := range vars {
		proj[i] = "?" + v
	}
	return qb.Prologue() + "SELECT " + strings.Join(proj, " ") +
		" WHERE { " + strings.Join(patterns, " ") + " }"
}

// TargetPartitions names the partitions (as virtual/semantic model
// names under the given prefix) a query of each Table 4 type should be
// posed against.
type QueryType int

// The Table 4 query types.
const (
	// EdgeTraversal touches only topology quads/triples.
	EdgeTraversal QueryType = iota
	// EdgeWithKV touches the edge resource and its KVs.
	EdgeWithKV
	// NodeKV touches node KV triples.
	NodeKV
)

// TargetModel returns the narrowest dataset (model or virtual model
// name) that answers a query type under this scheme, per Table 4.
func (qb *QueryBuilder) TargetModel(prefix string, qt QueryType) string {
	names := PartitionNames(prefix)
	switch qt {
	case EdgeTraversal:
		return names.Topology
	case EdgeWithKV:
		if qb.Scheme == NG {
			// NG needs e-s-p-o (topology) plus e-e-K-V (edge KVs).
			return names.TopoEdgeKV
		}
		// SP and RF keep the anchors with the edge KVs (§3.2).
		return names.EdgeKV
	default:
		return names.NodeKV
	}
}
