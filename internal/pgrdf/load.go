package pgrdf

import (
	"fmt"

	"repro/internal/store"
)

// ModelNames are the semantic-model names used when loading a dataset
// into a store under a prefix.
type ModelNames struct {
	// Topology, NodeKV and EdgeKV are the three partitions of §3.2.
	Topology, NodeKV, EdgeKV string
	// All is a virtual model over all three (the paper's virtual model
	// mechanism for queries spanning partitions).
	All string
	// TopoNodeKV is a virtual model over topology + node KVs (used by
	// node-centric queries, Table 4).
	TopoNodeKV string
	// TopoEdgeKV is a virtual model over topology + edge KVs (what NG
	// edge+edge-KV queries need, Table 4).
	TopoEdgeKV string
}

// PartitionNames derives the standard model names for a prefix.
func PartitionNames(prefix string) ModelNames {
	return ModelNames{
		Topology:   prefix + "_topo",
		NodeKV:     prefix + "_nodekv",
		EdgeKV:     prefix + "_edgekv",
		All:        prefix,
		TopoNodeKV: prefix + "_topo_nodekv",
		TopoEdgeKV: prefix + "_topo_edgekv",
	}
}

// LoadPartitioned bulk-loads a dataset into three semantic models
// (partitions) and defines the virtual models of §3.2. It returns the
// model names; query the .All virtual model for full coverage, or a
// narrower partition for partition-local scans.
func LoadPartitioned(st *store.Store, ds *Dataset, prefix string) (ModelNames, error) {
	names := PartitionNames(prefix)
	if _, err := st.Load(names.Topology, ds.Topology); err != nil {
		return names, fmt.Errorf("pgrdf: loading topology partition: %w", err)
	}
	if _, err := st.Load(names.NodeKV, ds.NodeKV); err != nil {
		return names, fmt.Errorf("pgrdf: loading node-KV partition: %w", err)
	}
	if _, err := st.Load(names.EdgeKV, ds.EdgeKV); err != nil {
		return names, fmt.Errorf("pgrdf: loading edge-KV partition: %w", err)
	}
	if err := st.CreateVirtualModel(names.All, names.Topology, names.NodeKV, names.EdgeKV); err != nil {
		return names, err
	}
	if err := st.CreateVirtualModel(names.TopoNodeKV, names.Topology, names.NodeKV); err != nil {
		return names, err
	}
	if err := st.CreateVirtualModel(names.TopoEdgeKV, names.Topology, names.EdgeKV); err != nil {
		return names, err
	}
	return names, nil
}

// LoadSingle bulk-loads a dataset into one semantic model (the
// unpartitioned baseline for the partitioning ablation).
func LoadSingle(st *store.Store, ds *Dataset, model string) error {
	if _, err := st.Load(model, ds.All()); err != nil {
		return fmt.Errorf("pgrdf: loading %s: %w", model, err)
	}
	return nil
}

// RecommendedIndexes returns the semantic-network indexes §4.4 creates
// for a scheme: PCSGM, PSCGM, SPCGM always; GPSCM only for NG (the SP
// scheme stores no named graphs, which is why Table 9's totals come out
// similar despite SP's extra triples).
func RecommendedIndexes(s Scheme) []string {
	base := []string{"PCSGM", "PSCGM", "SPCGM"}
	if s == NG {
		return append(base, "GPSCM")
	}
	return base
}

// NewStore creates a store with the recommended indexes for a scheme.
func NewStore(s Scheme) (*store.Store, error) {
	return store.NewWithIndexes(RecommendedIndexes(s))
}
