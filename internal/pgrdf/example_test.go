package pgrdf_test

import (
	"fmt"
	"log"

	"repro/internal/pg"
	"repro/internal/pgrdf"
	"repro/internal/sparql"
)

// ExampleConverter_Convert shows the Figure 1 graph under the named-graph
// scheme: one quad per edge, edge KVs clustered into the edge's graph.
func ExampleConverter_Convert() {
	g := pg.NewGraph()
	v1, _ := g.AddVertexWithID(1)
	v1.SetProperty("name", pg.S("Amy"))
	g.AddVertexWithID(2)
	e, _ := g.AddEdgeWithID(3, 1, 2, "follows")
	e.SetProperty("since", pg.I(2007))

	ds := pgrdf.NewConverter(pgrdf.NG).Convert(g)
	for _, q := range ds.Topology {
		fmt.Println(q)
	}
	for _, q := range ds.EdgeKV {
		fmt.Println(q)
	}
	// Output:
	// <http://pg/v1> <http://pg/r/follows> <http://pg/v2> <http://pg/e3>
	// <http://pg/e3> <http://pg/k/since> "2007"^^<http://www.w3.org/2001/XMLSchema#int> <http://pg/e3>
}

// ExampleQueryBuilder shows the §2.3 query formulation rules producing
// the subproperty-scheme pattern for edge-KV access.
func ExampleQueryBuilder() {
	qb := pgrdf.NewQueryBuilder(pgrdf.SP)
	fmt.Println(qb.EdgeBoundKVPattern("x", "y", "e", "follows", "since", "yr"))
	// Output:
	// ?x ?e ?y . ?e rdfs:subPropertyOf rel:follows . ?e key:since ?yr .
}

// ExampleLoadPartitioned runs the full pipeline: convert, load into
// partitioned semantic models, query with SPARQL.
func ExampleLoadPartitioned() {
	g := pg.NewGraph()
	v1, _ := g.AddVertexWithID(1)
	v1.SetProperty("name", pg.S("Amy"))
	v2, _ := g.AddVertexWithID(2)
	v2.SetProperty("name", pg.S("Mira"))
	g.AddEdgeWithID(3, 1, 2, "follows")

	st, err := pgrdf.NewStore(pgrdf.NG)
	if err != nil {
		log.Fatal(err)
	}
	names, err := pgrdf.LoadPartitioned(st, pgrdf.NewConverter(pgrdf.NG).Convert(g), "demo")
	if err != nil {
		log.Fatal(err)
	}
	res, err := sparql.NewEngine(st).Query(names.All, `
		PREFIX rel: <http://pg/r/>
		PREFIX key: <http://pg/k/>
		SELECT ?who WHERE { ?x rel:follows ?y . ?y key:name ?who }`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Rows[0][0].Value)
	// Output:
	// Mira
}

// ExamplePredictCardinalities evaluates the Table 2 formulas.
func ExamplePredictCardinalities() {
	g := pg.NewGraph()
	v1, _ := g.AddVertexWithID(1)
	v1.SetProperty("name", pg.S("Amy"))
	g.AddVertexWithID(2)
	g.AddEdgeWithID(3, 1, 2, "follows")
	g.AddEdgeWithID(4, 1, 2, "knows")

	c := pgrdf.PredictCardinalities(g.ComputeStats(), pgrdf.SP)
	fmt.Printf("obj-prop triples: %d (3 per edge)\n", c.ObjPropQuads)
	fmt.Printf("distinct obj-properties: %d (eL + E + 1)\n", c.DistinctObjProps)
	// Output:
	// obj-prop triples: 6 (3 per edge)
	// distinct obj-properties: 5 (eL + E + 1)
}
