package pgrdf

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/pg"
	"repro/internal/rdf"
)

// figure1 builds the paper's Figure 1 sample graph.
func figure1(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	mustVertex(t, g, 1, map[string]pg.Value{"name": pg.S("Amy"), "age": pg.I(23)})
	mustVertex(t, g, 2, map[string]pg.Value{"name": pg.S("Mira"), "age": pg.I(22)})
	mustEdge(t, g, 3, 1, 2, "follows", map[string]pg.Value{"since": pg.I(2007)})
	mustEdge(t, g, 4, 1, 2, "knows", map[string]pg.Value{"firstMetAt": pg.S("MIT")})
	return g
}

func mustVertex(t *testing.T, g *pg.Graph, id pg.ID, props map[string]pg.Value) {
	t.Helper()
	v, err := g.AddVertexWithID(id)
	if err != nil {
		t.Fatal(err)
	}
	for k, val := range props {
		v.SetProperty(k, val)
	}
}

func mustEdge(t *testing.T, g *pg.Graph, id, src, dst pg.ID, label string, props map[string]pg.Value) {
	t.Helper()
	e, err := g.AddEdgeWithID(id, src, dst, label)
	if err != nil {
		t.Fatal(err)
	}
	for k, val := range props {
		e.SetProperty(k, val)
	}
}

func quadSet(quads []rdf.Quad) map[string]bool {
	m := make(map[string]bool, len(quads))
	for _, q := range quads {
		m[q.String()] = true
	}
	return m
}

func TestVocabularyIRIs(t *testing.T) {
	v := DefaultVocabulary()
	if got := v.VertexIRI(1).Value; got != "http://pg/v1" {
		t.Errorf("vertex IRI = %q", got)
	}
	if got := v.EdgeIRI(3).Value; got != "http://pg/e3" {
		t.Errorf("edge IRI = %q", got)
	}
	if got := v.LabelIRI("follows").Value; got != "http://pg/r/follows" {
		t.Errorf("label IRI = %q", got)
	}
	if got := v.KeyIRI("age").Value; got != "http://pg/k/age" {
		t.Errorf("key IRI = %q", got)
	}
	// Twitter-style vocabulary.
	v.VertexPrefix = "n"
	if got := v.VertexIRI(6160742).Value; got != "http://pg/n6160742" {
		t.Errorf("twitter vertex IRI = %q", got)
	}
}

func TestValueLiteralDatatypes(t *testing.T) {
	if !ValueLiteral(pg.I(23)).Equal(rdf.NewInt(23)) {
		t.Error("small int should map to xsd:int (paper §2.2)")
	}
	if !ValueLiteral(pg.I(1 << 40)).Equal(rdf.NewInteger(1 << 40)) {
		t.Error("large int should map to xsd:integer")
	}
	if !ValueLiteral(pg.S("MIT")).Equal(rdf.NewLiteral("MIT")) {
		t.Error("string mapping")
	}
	if !ValueLiteral(pg.B(true)).Equal(rdf.NewBoolean(true)) {
		t.Error("bool mapping")
	}
	if !ValueLiteral(pg.F(2.5)).Equal(rdf.NewDouble(2.5)) {
		t.Error("float mapping")
	}
}

// TestNGShapes checks Table 1's NG row on Figure 1.
func TestNGShapes(t *testing.T) {
	ds := NewConverter(NG).Convert(figure1(t))
	topo := quadSet(ds.Topology)
	if !topo[`<http://pg/v1> <http://pg/r/follows> <http://pg/v2> <http://pg/e3>`] {
		t.Errorf("e-s-p-o quad missing; topology = %v", ds.Topology)
	}
	if len(ds.Topology) != 2 {
		t.Errorf("topology quads = %d, want 2 (one per edge)", len(ds.Topology))
	}
	ekv := quadSet(ds.EdgeKV)
	if !ekv[`<http://pg/e3> <http://pg/k/since> "2007"^^<http://www.w3.org/2001/XMLSchema#int> <http://pg/e3>`] {
		t.Errorf("e-e-K-V quad missing; edgeKV = %v", ds.EdgeKV)
	}
	nkv := quadSet(ds.NodeKV)
	if !nkv[`<http://pg/v1> <http://pg/k/name> "Amy"`] || !nkv[`<http://pg/v1> <http://pg/k/age> "23"^^<http://www.w3.org/2001/XMLSchema#int>`] {
		t.Errorf("node KVs wrong: %v", ds.NodeKV)
	}
	if len(ds.NodeKV) != 4 || len(ds.EdgeKV) != 2 {
		t.Errorf("counts: nodeKV=%d edgeKV=%d", len(ds.NodeKV), len(ds.EdgeKV))
	}
}

// TestSPShapes checks Table 1's SP row.
func TestSPShapes(t *testing.T) {
	ds := NewConverter(SP).Convert(figure1(t))
	all := quadSet(ds.All())
	for _, want := range []string{
		`<http://pg/v1> <http://pg/e3> <http://pg/v2>`,
		`<http://pg/e3> <http://www.w3.org/2000/01/rdf-schema#subPropertyOf> <http://pg/r/follows>`,
		`<http://pg/v1> <http://pg/r/follows> <http://pg/v2>`,
		`<http://pg/e3> <http://pg/k/since> "2007"^^<http://www.w3.org/2001/XMLSchema#int>`,
	} {
		if !all[want] {
			t.Errorf("missing SP quad: %s", want)
		}
	}
	// 3 object-prop triples per edge: -s-e-o, -e-sPO-p, -s-p-o.
	if len(ds.Topology) != 2 || len(ds.EdgeKV) != 2*2+2 {
		t.Errorf("partition sizes: topo=%d edgeKV=%d", len(ds.Topology), len(ds.EdgeKV))
	}
	// No named graphs in SP.
	for _, q := range ds.All() {
		if !q.InDefaultGraph() {
			t.Errorf("SP emitted a named-graph quad: %s", q)
		}
	}
}

// TestRFShapes checks Table 1's RF row.
func TestRFShapes(t *testing.T) {
	ds := NewConverter(RF).Convert(figure1(t))
	all := quadSet(ds.All())
	for _, want := range []string{
		`<http://pg/e3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#subject> <http://pg/v1>`,
		`<http://pg/e3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#predicate> <http://pg/r/follows>`,
		`<http://pg/e3> <http://www.w3.org/1999/02/22-rdf-syntax-ns#object> <http://pg/v2>`,
		`<http://pg/v1> <http://pg/r/follows> <http://pg/v2>`,
	} {
		if !all[want] {
			t.Errorf("missing RF quad: %s", want)
		}
	}
	// 4 object-prop triples per edge.
	objProp := 0
	for _, q := range ds.All() {
		if q.O.IsResource() {
			objProp++
		}
	}
	if objProp != 8 {
		t.Errorf("obj-prop triples = %d, want 8 (4 per edge)", objProp)
	}
}

func TestIsolatedVertexSpecialCase(t *testing.T) {
	g := pg.NewGraph()
	mustVertex(t, g, 7, nil)
	for _, s := range Schemes {
		ds := NewConverter(s).Convert(g)
		if len(ds.Topology) != 1 {
			t.Fatalf("%s: topology = %v", s, ds.Topology)
		}
		want := `<http://pg/v7> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://www.w3.org/2000/01/rdf-schema#Resource>`
		if ds.Topology[0].String() != want {
			t.Errorf("%s: got %s", s, ds.Topology[0])
		}
	}
}

func TestOptionsSingleTripleWhenNoKVs(t *testing.T) {
	g := pg.NewGraph()
	mustVertex(t, g, 1, nil)
	mustVertex(t, g, 2, nil)
	mustEdge(t, g, 3, 1, 2, "follows", nil) // no KVs
	c := NewConverter(SP)
	c.Opts.SingleTripleWhenNoKVs = true
	ds := c.Convert(g)
	if len(ds.EdgeKV) != 0 || len(ds.Topology) != 1 {
		t.Errorf("optimized edge should be one -s-p-o triple: topo=%v edgeKV=%v", ds.Topology, ds.EdgeKV)
	}
}

func TestOptionsNoExplicitSPO(t *testing.T) {
	c := NewConverter(SP)
	c.Opts.ExplicitSPO = false
	ds := c.Convert(figure1(t))
	for _, q := range ds.All() {
		if q.P.Value == "http://pg/r/follows" && q.O.IsResource() {
			t.Errorf("explicit -s-p-o emitted despite option: %s", q)
		}
	}
}

// TestCardinalityFormulas is invariant 3: Table 2's predictions match
// the measured characteristics of generated datasets, on Figure 1 and on
// random graphs.
func TestCardinalityFormulas(t *testing.T) {
	graphs := map[string]*pg.Graph{"figure1": figure1(t)}
	for i := 0; i < 10; i++ {
		graphs[fmt.Sprintf("random%d", i)] = randomGraphNoIsolated(int64(i), 20+i*5, 40+i*10)
	}
	for name, g := range graphs {
		st := g.ComputeStats()
		for _, s := range Schemes {
			ds := NewConverter(s).Convert(g)
			got := MeasureCardinalities(ds)
			want := PredictCardinalities(st, s)
			if got != want {
				t.Errorf("%s/%s: measured %+v != predicted %+v", name, s, got, want)
			}
		}
	}
}

// randomGraphNoIsolated builds a random graph where every vertex has at
// least one KV (so the Table 2 formulas hold exactly: every vertex is an
// RDF subject and no isolated-vertex typing triples are emitted).
func randomGraphNoIsolated(seed int64, nV, nE int) *pg.Graph {
	rng := newRand(seed)
	g := pg.NewGraph()
	ids := make([]pg.ID, 0, nV)
	for i := 0; i < nV; i++ {
		v := g.AddVertex()
		v.SetProperty(fmt.Sprintf("k%d", rng.Intn(5)), pg.I(int64(rng.Intn(100))))
		if rng.Intn(2) == 0 {
			v.SetProperty("name", pg.S(fmt.Sprintf("u%d", rng.Intn(30))))
		}
		ids = append(ids, v.ID)
	}
	labels := []string{"follows", "knows"}
	for i := 0; i < nE; i++ {
		e, err := g.AddEdge(ids[rng.Intn(nV)], ids[rng.Intn(nV)], labels[rng.Intn(2)])
		if err != nil {
			panic(err)
		}
		for k := 0; k < rng.Intn(3); k++ {
			e.SetProperty(fmt.Sprintf("k%d", rng.Intn(5)), pg.I(int64(rng.Intn(100))))
		}
	}
	return g
}

// TestRoundTripAllSchemes is invariant 1: PG -> RDF -> PG is lossless
// under every scheme.
func TestRoundTripAllSchemes(t *testing.T) {
	graphs := []*pg.Graph{figure1(t)}
	for i := 0; i < 8; i++ {
		graphs = append(graphs, randomGraphNoIsolated(int64(100+i), 10+i*3, 20+i*6))
	}
	// Include graphs with isolated vertices and KV-less edges.
	g := figure1(t)
	mustVertex(t, g, 99, nil)
	mustEdge(t, g, 100, 1, 2, "likes", nil)
	graphs = append(graphs, g)

	for gi, g := range graphs {
		for _, s := range Schemes {
			c := NewConverter(s)
			ds := c.Convert(g)
			back, err := FromRDF(ds, c.Vocab)
			if err != nil {
				t.Fatalf("graph %d scheme %s: FromRDF: %v", gi, s, err)
			}
			assertSameGraph(t, g, back, fmt.Sprintf("graph %d scheme %s", gi, s))
		}
	}
}

func assertSameGraph(t *testing.T, a, b *pg.Graph, ctx string) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size V %d/%d E %d/%d", ctx, a.NumVertices(), b.NumVertices(), a.NumEdges(), b.NumEdges())
	}
	ok := true
	a.Vertices(func(v *pg.Vertex) bool {
		w := b.Vertex(v.ID)
		if w == nil {
			t.Errorf("%s: vertex %d missing", ctx, v.ID)
			ok = false
			return false
		}
		for _, k := range v.Keys() {
			av, _ := v.Property(k)
			bv, has := w.Property(k)
			if !has || !reflect.DeepEqual(av, bv) {
				t.Errorf("%s: vertex %d key %s: %v vs %v", ctx, v.ID, k, av, bv)
				ok = false
			}
		}
		if len(v.Keys()) != len(w.Keys()) {
			t.Errorf("%s: vertex %d key count", ctx, v.ID)
			ok = false
		}
		return true
	})
	a.Edges(func(e *pg.Edge) bool {
		f := b.Edge(e.ID)
		if f == nil || e.Label != f.Label || e.Src != f.Src || e.Dst != f.Dst {
			t.Errorf("%s: edge %d differs", ctx, e.ID)
			ok = false
			return false
		}
		for _, k := range e.Keys() {
			av, _ := e.Property(k)
			bv, has := f.Property(k)
			if !has || !reflect.DeepEqual(av, bv) {
				t.Errorf("%s: edge %d key %s: %v vs %v", ctx, e.ID, k, av, bv)
				ok = false
			}
		}
		if len(e.Keys()) != len(f.Keys()) {
			t.Errorf("%s: edge %d key count", ctx, e.ID)
			ok = false
		}
		return true
	})
	if !ok {
		t.FailNow()
	}
}

func TestCountTriplesTable7(t *testing.T) {
	ds := NewConverter(NG).Convert(figure1(t))
	tc := CountTriples(ds, DefaultVocabulary())
	if tc.ByLabel["follows"] != 1 || tc.ByLabel["knows"] != 1 {
		t.Errorf("labels = %v", tc.ByLabel)
	}
	if tc.ByKey["name"] != 2 || tc.ByKey["age"] != 2 || tc.ByKey["since"] != 1 {
		t.Errorf("keys = %v", tc.ByKey)
	}
	if tc.Total != ds.Len() {
		t.Errorf("total = %d want %d", tc.Total, ds.Len())
	}
}
