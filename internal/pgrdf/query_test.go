package pgrdf

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/pg"
	"repro/internal/sparql"
	"repro/internal/store"
)

// loadScheme converts and loads a graph under a scheme, returning the
// engine and the virtual model covering all partitions.
func loadScheme(t *testing.T, g *pg.Graph, s Scheme) (*sparql.Engine, string) {
	t.Helper()
	st, err := NewStore(s)
	if err != nil {
		t.Fatal(err)
	}
	// GSPCM serves GRAPH-anchored subject lookups (paper Table 5, Q2-NG).
	if s == NG {
		if err := st.CreateIndex("GSPCM"); err != nil {
			t.Fatal(err)
		}
	}
	ds := NewConverter(s).Convert(g)
	if _, err := LoadPartitioned(st, ds, "pg"); err != nil {
		t.Fatal(err)
	}
	return sparql.NewEngine(st), "pg"
}

func sortedRows(t *testing.T, e *sparql.Engine, model, q string) []string {
	t.Helper()
	res, err := e.Query(model, q)
	if err != nil {
		t.Fatalf("query: %v\n%s", err, q)
	}
	var rows []string
	for _, row := range res.Rows {
		parts := make([]string, len(row))
		for i, term := range row {
			parts[i] = term.String()
		}
		rows = append(rows, strings.Join(parts, " "))
	}
	sort.Strings(rows)
	return rows
}

// TestIntroQueryAllSchemes runs §2.1's "who follows whom since when?"
// in all three model-specific formulations and checks identical answers.
func TestIntroQueryAllSchemes(t *testing.T) {
	g := figure1(t)
	var results [][]string
	for _, s := range Schemes {
		e, model := loadScheme(t, g, s)
		qb := &QueryBuilder{Scheme: s, Vocab: DefaultVocabulary()}
		q := qb.Select(
			[]string{"xname", "yname", "yr"},
			qb.EdgeBoundKVPattern("x", "y", "r", "follows", "since", "yr"),
			qb.NodeKVPattern("x", "name", "xname"),
			qb.NodeKVPattern("y", "name", "yname"),
		)
		results = append(results, sortedRows(t, e, model, q))
	}
	want := `"Amy" "Mira" "2007"^^<http://www.w3.org/2001/XMLSchema#int>`
	for i, rows := range results {
		if len(rows) != 1 || rows[0] != want {
			t.Errorf("%s: rows = %v", Schemes[i], rows)
		}
	}
}

// TestTable3QueriesAgree runs the Table 3 query shapes (Q1–Q4) against
// all three schemes and checks they agree.
func TestTable3QueriesAgree(t *testing.T) {
	g := randomSocialGraph(42, 30, 80)
	queries := sparql.Table3Queries()
	perScheme := map[Scheme]map[string][]string{}
	for _, s := range Schemes {
		e, model := loadScheme(t, g, s)
		perScheme[s] = map[string][]string{}
		for name, q := range queries {
			switch {
			case strings.HasPrefix(name, "Q2-"):
				if name != "Q2-"+s.String() {
					continue
				}
				perScheme[s]["Q2"] = sortedRows(t, e, model, q)
			default:
				perScheme[s][name] = sortedRows(t, e, model, q)
			}
		}
	}
	for _, name := range []string{"Q1", "Q2", "Q3", "Q4"} {
		rf, ng, sp := perScheme[RF][name], perScheme[NG][name], perScheme[SP][name]
		if name == "Q4" {
			// Q4 (all ?x ?p ?y with IRI object) necessarily sees the
			// scheme's own structural triples; compare only NG's count
			// against the true edge count below instead.
			continue
		}
		if fmt.Sprint(rf) != fmt.Sprint(ng) || fmt.Sprint(ng) != fmt.Sprint(sp) {
			t.Errorf("%s disagrees:\nRF=%d rows\nNG=%d rows\nSP=%d rows", name, len(rf), len(ng), len(sp))
		}
	}
	if len(perScheme[NG]["Q1"]) == 0 {
		t.Error("triangle query returned nothing; test graph too sparse")
	}
}

// TestEdgeKVQueryAllSchemes is invariant 2 on random graphs: the
// edge-KV access patterns (Q2 family) return identical result multisets
// under RF, NG and SP.
func TestEdgeKVQueryAllSchemes(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		g := randomSocialGraph(int64(trial), 15+trial*5, 30+trial*20)
		var results [][]string
		for _, s := range Schemes {
			e, model := loadScheme(t, g, s)
			qb := &QueryBuilder{Scheme: s, Vocab: DefaultVocabulary()}
			q := qb.Select(
				[]string{"x", "y", "k", "v"},
				qb.EdgeKVPattern("x", "y", "e", "follows", "k", "v"),
			)
			results = append(results, sortedRows(t, e, model, q))
		}
		for i := 1; i < len(results); i++ {
			if fmt.Sprint(results[0]) != fmt.Sprint(results[i]) {
				t.Fatalf("trial %d: %s (%d rows) and %s (%d rows) disagree",
					trial, Schemes[0], len(results[0]), Schemes[i], len(results[i]))
			}
		}
	}
}

// TestNodeCentricAgainstPartitions checks Table 4's partition targeting:
// node-KV queries answered from the node-KV partition alone, edge
// traversals from topology alone.
func TestNodeCentricAgainstPartitions(t *testing.T) {
	g := randomSocialGraph(7, 25, 60)
	for _, s := range []Scheme{NG, SP} {
		st, err := NewStore(s)
		if err != nil {
			t.Fatal(err)
		}
		ds := NewConverter(s).Convert(g)
		names, err := LoadPartitioned(st, ds, "pg")
		if err != nil {
			t.Fatal(err)
		}
		e := sparql.NewEngine(st)
		qb := &QueryBuilder{Scheme: s, Vocab: DefaultVocabulary()}

		full := sortedRows(t, e, names.All, qb.Select([]string{"n"}, qb.NodeKVPattern("n", "name", "v")))
		narrow := sortedRows(t, e, qb.TargetModel("pg", NodeKV), qb.Select([]string{"n"}, qb.NodeKVPattern("n", "name", "v")))
		if fmt.Sprint(full) != fmt.Sprint(narrow) {
			t.Errorf("%s: node-KV partition disagrees with full dataset", s)
		}

		fullT := sortedRows(t, e, names.All, qb.Select([]string{"x", "y"}, qb.EdgePattern("x", "y", "follows")))
		narrowT := sortedRows(t, e, qb.TargetModel("pg", EdgeTraversal), qb.Select([]string{"x", "y"}, qb.EdgePattern("x", "y", "follows")))
		if fmt.Sprint(fullT) != fmt.Sprint(narrowT) {
			t.Errorf("%s: topology partition disagrees with full dataset", s)
		}

		fullKV := sortedRows(t, e, names.All, qb.Select([]string{"x", "y", "k", "v"}, qb.EdgeKVPattern("x", "y", "e", "follows", "k", "v")))
		narrowKV := sortedRows(t, e, qb.TargetModel("pg", EdgeWithKV), qb.Select([]string{"x", "y", "k", "v"}, qb.EdgeKVPattern("x", "y", "e", "follows", "k", "v")))
		if fmt.Sprint(fullKV) != fmt.Sprint(narrowKV) {
			t.Errorf("%s: edge-KV partition target disagrees with full dataset (%d vs %d rows)", s, len(fullKV), len(narrowKV))
		}
	}
}

// randomSocialGraph makes a random graph where every vertex has a name
// KV and some edges carry KVs — shaped like the paper's dataset.
func randomSocialGraph(seed int64, nV, nE int) *pg.Graph {
	rng := newRand(seed)
	g := pg.NewGraph()
	ids := make([]pg.ID, 0, nV)
	for i := 0; i < nV; i++ {
		v := g.AddVertex()
		v.SetProperty("name", pg.S(fmt.Sprintf("user%d", i)))
		if rng.Intn(3) == 0 {
			v.SetProperty("hasTag", pg.S(fmt.Sprintf("#tag%d", rng.Intn(5))))
		}
		ids = append(ids, v.ID)
	}
	labels := []string{"follows", "knows"}
	for i := 0; i < nE; i++ {
		src, dst := ids[rng.Intn(nV)], ids[rng.Intn(nV)]
		e, err := g.AddEdge(src, dst, labels[rng.Intn(2)])
		if err != nil {
			panic(err)
		}
		if rng.Intn(2) == 0 {
			e.SetProperty("weight", pg.I(int64(rng.Intn(10))))
		}
		if rng.Intn(4) == 0 {
			e.SetProperty("hasTag", pg.S(fmt.Sprintf("#tag%d", rng.Intn(5))))
		}
	}
	return g
}

func TestRecommendedIndexes(t *testing.T) {
	ng := RecommendedIndexes(NG)
	if len(ng) != 4 || ng[3] != "GPSCM" {
		t.Errorf("NG indexes = %v", ng)
	}
	sp := RecommendedIndexes(SP)
	for _, spec := range sp {
		if spec == "GPSCM" {
			t.Error("SP should not carry a G-leading index (Table 9)")
		}
	}
	st, err := NewStore(NG)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(st.Indexes()); got != 4 {
		t.Errorf("NG store indexes = %d", got)
	}
}

func TestLoadSingleVsPartitionedAgree(t *testing.T) {
	g := randomSocialGraph(3, 20, 50)
	for _, s := range []Scheme{NG, SP} {
		ds := NewConverter(s).Convert(g)

		stP, _ := NewStore(s)
		if _, err := LoadPartitioned(stP, ds, "pg"); err != nil {
			t.Fatal(err)
		}
		stS, _ := NewStore(s)
		if err := LoadSingle(stS, ds, "single"); err != nil {
			t.Fatal(err)
		}
		q := NewQueryBuilder(s).Select([]string{"x", "y"}, NewQueryBuilder(s).EdgePattern("x", "y", "follows"))
		a := sortedRows(t, sparql.NewEngine(stP), "pg", q)
		b := sortedRows(t, sparql.NewEngine(stS), "single", q)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Errorf("%s: partitioned and single-model stores disagree", s)
		}
	}
}

// TestStorePatternVisibility double-checks that NG topology quads are
// visible to plain (non-GRAPH) patterns — the property §2.3's Q1 relies
// on.
func TestStorePatternVisibility(t *testing.T) {
	g := figure1(t)
	st, _ := NewStore(NG)
	ds := NewConverter(NG).Convert(g)
	if _, err := LoadPartitioned(st, ds, "pg"); err != nil {
		t.Fatal(err)
	}
	p := store.AnyPattern()
	p.P = st.Dict().Lookup(DefaultVocabulary().LabelIRI("follows"))
	n := 0
	st.Scan(p, func(store.IDQuad) bool { n++; return true })
	if n != 1 {
		t.Errorf("follows quads visible = %d", n)
	}
}
