package pgrdf

import (
	"fmt"
	"testing"

	"repro/internal/sparql"
)

// TestMigrateAllPairs re-encodes a random graph between every ordered
// pair of schemes and checks the result is byte-identical to a direct
// conversion.
func TestMigrateAllPairs(t *testing.T) {
	g := randomSocialGraph(11, 20, 60)
	vocab := DefaultVocabulary()
	opts := DefaultOptions()
	direct := map[Scheme]*Dataset{}
	for _, s := range Schemes {
		direct[s] = (&Converter{Scheme: s, Vocab: vocab, Opts: opts}).Convert(g)
	}
	for _, from := range Schemes {
		for _, to := range Schemes {
			if from == to {
				if _, err := Migrate(direct[from], vocab, to, opts); err == nil {
					t.Errorf("%s->%s: same-scheme migration should error", from, to)
				}
				continue
			}
			got, err := Migrate(direct[from], vocab, to, opts)
			if err != nil {
				t.Fatalf("%s->%s: %v", from, to, err)
			}
			want := direct[to]
			if fmt.Sprint(quadSet(got.All())) != fmt.Sprint(quadSet(want.All())) {
				t.Errorf("%s->%s: migrated dataset differs from direct conversion (%d vs %d quads)",
					from, to, got.Len(), want.Len())
			}
		}
	}
}

// TestMigratedStoreAnswersQueries loads a migrated dataset and checks
// the scheme-specific query formulation works against it.
func TestMigratedStoreAnswersQueries(t *testing.T) {
	g := figure1(t)
	vocab := DefaultVocabulary()
	spDS := NewConverter(SP).Convert(g)
	ngDS, err := Migrate(spDS, vocab, NG, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(NG)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadPartitioned(st, ngDS, "pg"); err != nil {
		t.Fatal(err)
	}
	qb := NewQueryBuilder(NG)
	q := qb.Select([]string{"x", "yr"}, qb.EdgeBoundKVPattern("x", "y", "e", "follows", "since", "yr"))
	res, err := sparql.NewEngine(st).Query("pg", q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 || res.Rows[0][1].Value != "2007" {
		t.Fatalf("migrated NG store query: %s", res)
	}
}
