package pgrdf

import "fmt"

// Migrate re-encodes a transformed dataset from its scheme into another
// scheme, via the lossless reverse transformation. This is what a
// deployment does when switching models after measuring the §4 trade-offs
// (e.g. moving from SP to NG to reclaim the per-edge anchor triples).
func Migrate(ds *Dataset, vocab Vocabulary, to Scheme, opts Options) (*Dataset, error) {
	if ds.Scheme == to {
		return nil, fmt.Errorf("pgrdf: dataset is already in the %s scheme", to)
	}
	g, err := FromRDF(ds, vocab)
	if err != nil {
		return nil, fmt.Errorf("pgrdf: migrating from %s: %w", ds.Scheme, err)
	}
	conv := &Converter{Scheme: to, Vocab: vocab, Opts: opts}
	return conv.Convert(g), nil
}
