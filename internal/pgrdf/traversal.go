package pgrdf

import (
	"fmt"

	"repro/internal/rdf"
	"repro/internal/store"
)

// This file implements the procedural traversal alternative the paper's
// conclusion points to: "An alternative for such cases is to perform
// traversal procedurally similar to the approach of Gremlin". It gives
// property-graph applications the two capabilities §5.1 says SPARQL 1.1
// lacks — bounding path lengths and returning the paths themselves —
// directly over the PG-as-RDF store, for any scheme.

// Traverser walks topology edges of a PG-as-RDF dataset procedurally.
type Traverser struct {
	st    *store.Store
	vocab Vocabulary
	// models restricts traversal to a dataset (nil = all models).
	models map[store.ModelID]struct{}
}

// NewTraverser returns a traverser over the dataset named by model
// (a semantic or virtual model; "" = all models). The store must hold a
// dataset produced by any of the three schemes: traversal uses the
// asserted -s-p-o / e-s-p-o topology facts, which all schemes share.
func NewTraverser(st *store.Store, vocab Vocabulary, model string) (*Traverser, error) {
	t := &Traverser{st: st, vocab: vocab}
	if model != "" {
		ids, err := st.ResolveDataset(model)
		if err != nil {
			return nil, err
		}
		t.models = make(map[store.ModelID]struct{}, len(ids))
		for _, id := range ids {
			t.models[id] = struct{}{}
		}
	}
	return t, nil
}

// Step is one hop of a path: the edge label and the destination vertex.
type Step struct {
	Label string
	To    rdf.Term
}

// Path is a traversal result: a start vertex and the steps taken.
type Path struct {
	Start rdf.Term
	Steps []Step
}

// End returns the path's final vertex.
func (p Path) End() rdf.Term {
	if len(p.Steps) == 0 {
		return p.Start
	}
	return p.Steps[len(p.Steps)-1].To
}

// Len returns the path length in edges.
func (p Path) Len() int { return len(p.Steps) }

// String renders the path compactly.
func (p Path) String() string {
	s := p.Start.String()
	for _, st := range p.Steps {
		s += fmt.Sprintf(" -%s-> %s", st.Label, st.To.String())
	}
	return s
}

// Out returns the out-neighbors of node via edges with the given label
// ("" = any label).
func (t *Traverser) Out(node rdf.Term, label string) []Step {
	return t.neighbors(node, label, false)
}

// In returns the in-neighbors of node via edges with the given label
// ("" = any label).
func (t *Traverser) In(node rdf.Term, label string) []Step {
	return t.neighbors(node, label, true)
}

func (t *Traverser) neighbors(node rdf.Term, label string, reverse bool) []Step {
	id := t.st.Dict().Lookup(node)
	if id == store.NoID {
		return nil
	}
	p := store.AnyPattern()
	if reverse {
		p.C = id
	} else {
		p.S = id
	}
	if label != "" {
		pid := t.st.Dict().Lookup(t.vocab.LabelIRI(label))
		if pid == store.NoID {
			return nil
		}
		p.P = pid
	}
	relPrefix := t.vocab.RelNS
	var out []Step
	t.st.Scan(p, func(q store.IDQuad) bool {
		if t.models != nil {
			if _, ok := t.models[q.M]; !ok {
				return true
			}
		}
		pred := t.st.Dict().Term(q.P)
		if len(pred.Value) <= len(relPrefix) || pred.Value[:len(relPrefix)] != relPrefix {
			return true // not a topology predicate (KV triple or scheme anchor)
		}
		other := q.C
		if reverse {
			other = q.S
		}
		dest := t.st.Dict().Term(other)
		if !dest.IsIRI() {
			return true
		}
		out = append(out, Step{Label: pred.Value[len(relPrefix):], To: dest})
		return true
	})
	return out
}

// Walk enumerates every path from start following edges with the given
// label ("" = any), of length minLen..maxLen, invoking fn for each. The
// callback's path is only valid during the call (clone to retain).
// Returning false stops the traversal. Unlike SPARQL property paths,
// Walk can bound path length and yields the path itself — the §5.1 gap.
func (t *Traverser) Walk(start rdf.Term, label string, minLen, maxLen int, fn func(Path) bool) error {
	if maxLen < minLen || minLen < 0 {
		return fmt.Errorf("pgrdf: invalid path length bounds [%d,%d]", minLen, maxLen)
	}
	path := Path{Start: start}
	var rec func(node rdf.Term, depth int) bool
	rec = func(node rdf.Term, depth int) bool {
		if depth >= minLen {
			if !fn(path) {
				return false
			}
		}
		if depth == maxLen {
			return true
		}
		for _, step := range t.neighbors(node, label, false) {
			path.Steps = append(path.Steps, step)
			ok := rec(step.To, depth+1)
			path.Steps = path.Steps[:len(path.Steps)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(start, 0)
	return nil
}

// CountPaths counts the paths from start of exactly n hops over the
// label — the procedural equivalent of the paper's EQ11 queries.
func (t *Traverser) CountPaths(start rdf.Term, label string, n int) (int64, error) {
	var count int64
	err := t.Walk(start, label, n, n, func(Path) bool {
		count++
		return true
	})
	return count, err
}

// ShortestPath returns one shortest path between two vertices over the
// label ("" = any), using BFS, or ok=false when unreachable. This is the
// kind of query §5.1 notes SPARQL cannot express at all.
func (t *Traverser) ShortestPath(from, to rdf.Term, label string) (Path, bool) {
	if from.Equal(to) {
		return Path{Start: from}, true
	}
	type visit struct {
		node rdf.Term
		prev string // key of predecessor
		step Step
	}
	key := func(t rdf.Term) string { return t.String() }
	visited := map[string]visit{key(from): {node: from}}
	frontier := []rdf.Term{from}
	for len(frontier) > 0 {
		var next []rdf.Term
		for _, node := range frontier {
			for _, step := range t.neighbors(node, label, false) {
				k := key(step.To)
				if _, seen := visited[k]; seen {
					continue
				}
				visited[k] = visit{node: step.To, prev: key(node), step: step}
				if step.To.Equal(to) {
					// Reconstruct.
					var steps []Step
					cur := k
					for cur != key(from) {
						v := visited[cur]
						steps = append([]Step{v.step}, steps...)
						cur = v.prev
					}
					return Path{Start: from, Steps: steps}, true
				}
				next = append(next, step.To)
			}
		}
		frontier = next
	}
	return Path{}, false
}
