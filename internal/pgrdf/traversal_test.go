package pgrdf

import (
	"testing"

	"repro/internal/pg"
	"repro/internal/rdf"
)

// chainGraph builds v1 -> v2 -> v3 -> v4 with a shortcut v2 -> v4 and a
// knows edge v1 -> v3.
func chainGraph(t *testing.T) *pg.Graph {
	t.Helper()
	g := pg.NewGraph()
	for i := 1; i <= 4; i++ {
		mustVertex(t, g, pg.ID(i), map[string]pg.Value{"name": pg.S("u")})
	}
	mustEdge(t, g, 10, 1, 2, "follows", nil)
	mustEdge(t, g, 11, 2, 3, "follows", nil)
	mustEdge(t, g, 12, 3, 4, "follows", nil)
	mustEdge(t, g, 13, 2, 4, "follows", nil)
	mustEdge(t, g, 14, 1, 3, "knows", nil)
	return g
}

func traverserFor(t *testing.T, s Scheme) (*Traverser, Vocabulary) {
	t.Helper()
	g := chainGraph(t)
	st, err := NewStore(s)
	if err != nil {
		t.Fatal(err)
	}
	conv := NewConverter(s)
	if _, err := LoadPartitioned(st, conv.Convert(g), "pg"); err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraverser(st, conv.Vocab, "pg")
	if err != nil {
		t.Fatal(err)
	}
	return tr, conv.Vocab
}

func TestTraverserNeighborsAllSchemes(t *testing.T) {
	for _, s := range Schemes {
		tr, vocab := traverserFor(t, s)
		v1 := vocab.VertexIRI(1)
		out := tr.Out(v1, "follows")
		if len(out) != 1 || !out[0].To.Equal(vocab.VertexIRI(2)) {
			t.Errorf("%s: Out(v1, follows) = %v", s, out)
		}
		all := tr.Out(v1, "")
		if len(all) != 2 {
			t.Errorf("%s: Out(v1, any) = %v", s, all)
		}
		in := tr.In(vocab.VertexIRI(4), "follows")
		if len(in) != 2 {
			t.Errorf("%s: In(v4, follows) = %v", s, in)
		}
		if got := tr.Out(rdf.NewIRI("http://pg/v99"), "follows"); got != nil {
			t.Errorf("%s: neighbors of unknown vertex = %v", s, got)
		}
		if got := tr.Out(v1, "nope"); got != nil {
			t.Errorf("%s: neighbors over unknown label = %v", s, got)
		}
	}
}

func TestWalkBoundsAndPaths(t *testing.T) {
	tr, vocab := traverserFor(t, NG)
	v1 := vocab.VertexIRI(1)

	var paths []string
	err := tr.Walk(v1, "follows", 1, 3, func(p Path) bool {
		paths = append(paths, p.String())
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paths from v1: v2 (1), v2-v3 (2), v2-v4 (2), v2-v3-v4 (3) = 4.
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}

	// minLen filters short paths.
	n := 0
	tr.Walk(v1, "follows", 3, 3, func(p Path) bool {
		if p.Len() != 3 {
			t.Errorf("length bound violated: %s", p)
		}
		if !p.End().Equal(vocab.VertexIRI(4)) {
			t.Errorf("3-hop end = %v", p.End())
		}
		n++
		return true
	})
	if n != 1 {
		t.Errorf("3-hop paths = %d", n)
	}

	// Early stop.
	n = 0
	tr.Walk(v1, "follows", 0, 3, func(Path) bool { n++; return false })
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}

	if err := tr.Walk(v1, "follows", 2, 1, nil); err == nil {
		t.Error("invalid bounds accepted")
	}
}

func TestCountPathsMatchesSPARQLSemantics(t *testing.T) {
	tr, vocab := traverserFor(t, NG)
	v1 := vocab.VertexIRI(1)
	for hops, want := range map[int]int64{1: 1, 2: 2, 3: 1, 4: 0} {
		got, err := tr.CountPaths(v1, "follows", hops)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("CountPaths(%d) = %d, want %d", hops, got, want)
		}
	}
}

func TestShortestPath(t *testing.T) {
	tr, vocab := traverserFor(t, SP)
	v1, v4 := vocab.VertexIRI(1), vocab.VertexIRI(4)
	p, ok := tr.ShortestPath(v1, v4, "follows")
	if !ok || p.Len() != 2 {
		t.Fatalf("shortest v1->v4 = %v ok=%v", p, ok)
	}
	if !p.End().Equal(v4) {
		t.Errorf("end = %v", p.End())
	}
	// Unreachable in the follows direction.
	if _, ok := tr.ShortestPath(v4, v1, "follows"); ok {
		t.Error("v4 -> v1 should be unreachable")
	}
	// Identity.
	p, ok = tr.ShortestPath(v1, v1, "follows")
	if !ok || p.Len() != 0 {
		t.Errorf("identity path = %v ok=%v", p, ok)
	}
	// Any-label reaches via knows too.
	p, ok = tr.ShortestPath(v1, vocab.VertexIRI(3), "")
	if !ok || p.Len() != 1 || p.Steps[0].Label != "knows" {
		t.Errorf("any-label shortest = %v", p)
	}
}

func TestTraverserUnknownModel(t *testing.T) {
	st, _ := NewStore(NG)
	if _, err := NewTraverser(st, DefaultVocabulary(), "missing"); err == nil {
		t.Error("unknown model accepted")
	}
}
